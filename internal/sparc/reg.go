// Package sparc models the SPARC V8 instruction set: registers (including
// register windows), the instructions the safety checker understands, a
// two-pass assembler for authoring test inputs, and a binary encoder and
// decoder for the three 32-bit instruction formats. The safety checker
// proper consumes decoded machine words, never assembly text.
package sparc

import "fmt"

// Reg is a SPARC integer register number, 0..31:
//
//	%g0-%g7 =  0..7   globals (%g0 is hardwired to zero)
//	%o0-%o7 =  8..15  outs (%o6 is %sp, %o7 holds the call return address)
//	%l0-%l7 = 16..23  locals
//	%i0-%i7 = 24..31  ins (%i6 is %fp, %i7 holds the caller's PC)
type Reg uint8

// Well-known registers.
const (
	G0 Reg = 0
	O0 Reg = 8
	O7 Reg = 15
	SP Reg = 14 // %o6
	FP Reg = 30 // %i6
	I0 Reg = 24
	I7 Reg = 31
	L0 Reg = 16
)

// IsGlobal reports whether r is one of %g0-%g7, which are not shifted by
// register windows.
func (r Reg) IsGlobal() bool { return r < 8 }

// IsOut reports whether r is one of %o0-%o7.
func (r Reg) IsOut() bool { return r >= 8 && r < 16 }

// IsLocal reports whether r is one of %l0-%l7.
func (r Reg) IsLocal() bool { return r >= 16 && r < 24 }

// IsIn reports whether r is one of %i0-%i7.
func (r Reg) IsIn() bool { return r >= 24 }

// regNames caches the 32 valid register names: Reg.String sits on the
// wlp hot path (register variable naming), where a formatter call per
// lookup is measurable.
var regNames = func() (names [32]string) {
	for r := Reg(0); r < 32; r++ {
		switch r {
		case SP:
			names[r] = "%sp"
		case FP:
			names[r] = "%fp"
		default:
			names[r] = fmt.Sprintf("%%%c%d", "goli"[r/8], r%8)
		}
	}
	return
}()

func (r Reg) String() string {
	if r > 31 {
		return fmt.Sprintf("%%r%d?", uint8(r))
	}
	return regNames[r]
}

// ParseReg parses a register name such as "%o0", "%sp", or "%fp".
func ParseReg(s string) (Reg, error) {
	switch s {
	case "%sp":
		return SP, nil
	case "%fp":
		return FP, nil
	}
	if len(s) != 3 || s[0] != '%' || s[2] < '0' || s[2] > '7' {
		return 0, fmt.Errorf("sparc: bad register %q", s)
	}
	n := Reg(s[2] - '0')
	switch s[1] {
	case 'g':
		return n, nil
	case 'o':
		return 8 + n, nil
	case 'l':
		return 16 + n, nil
	case 'i':
		return 24 + n, nil
	case 'r':
		// %r0-%r31 raw numbering is not supported in the assembler.
	}
	return 0, fmt.Errorf("sparc: bad register %q", s)
}
