package sparc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// legacyMachine is a frozen copy of the interpreter as it existed before
// instruction semantics moved to the RTL lifter: a hand-written switch
// per opcode. It exists only as a differential reference — the RTL-driven
// Machine must agree with it on every reachable state.
type legacyMachine struct {
	prog        *Program
	globals     [8]uint32
	windows     [][16]uint32
	cwp         int
	mem         map[uint32]byte
	n, z, v, c  bool
	pc, npc     int
	steps       int
	pendingHost string
}

func newLegacyMachine(p *Program) *legacyMachine {
	return &legacyMachine{
		prog:    p,
		windows: make([][16]uint32, 32),
		cwp:     16,
		mem:     make(map[uint32]byte),
		pc:      p.Entry,
		npc:     p.Entry + 1,
	}
}

func (m *legacyMachine) get(r Reg) uint32 {
	switch {
	case r == G0:
		return 0
	case r < 8:
		return m.globals[r]
	case r < 24:
		return m.windows[m.cwp][r-8]
	default:
		return m.windows[m.cwp+1][r-24]
	}
}

func (m *legacyMachine) set(r Reg, v uint32) {
	switch {
	case r == G0:
	case r < 8:
		m.globals[r] = v
	case r < 24:
		m.windows[m.cwp][r-8] = v
	default:
		m.windows[m.cwp+1][r-24] = v
	}
}

func (m *legacyMachine) store32(addr, v uint32) {
	m.mem[addr] = byte(v >> 24)
	m.mem[addr+1] = byte(v >> 16)
	m.mem[addr+2] = byte(v >> 8)
	m.mem[addr+3] = byte(v)
}

func (m *legacyMachine) load32(addr uint32) uint32 {
	return uint32(m.mem[addr])<<24 | uint32(m.mem[addr+1])<<16 |
		uint32(m.mem[addr+2])<<8 | uint32(m.mem[addr+3])
}

func (m *legacyMachine) operand2(i Insn) uint32 {
	if i.Imm {
		return uint32(i.SImm)
	}
	return m.get(i.Rs2)
}

func (m *legacyMachine) setCC(res uint32, v, c bool) {
	m.n = res&0x80000000 != 0
	m.z = res == 0
	m.v = v
	m.c = c
}

func (m *legacyMachine) cond(c Cond) bool {
	switch c {
	case CondA:
		return true
	case CondN:
		return false
	case CondE:
		return m.z
	case CondNE:
		return !m.z
	case CondL:
		return m.n != m.v
	case CondGE:
		return m.n == m.v
	case CondLE:
		return m.z || m.n != m.v
	case CondG:
		return !m.z && m.n == m.v
	case CondCS:
		return m.c
	case CondCC:
		return !m.c
	case CondLEU:
		return m.c || m.z
	case CondGU:
		return !m.c && !m.z
	case CondNEG:
		return m.n
	case CondPOS:
		return !m.n
	case CondVS:
		return m.v
	case CondVC:
		return !m.v
	}
	return false
}

func (m *legacyMachine) step() error {
	if m.pc == exitPC {
		return ErrExit
	}
	if m.pc < 0 || m.pc >= len(m.prog.Insns) {
		return fmt.Errorf("sparc: PC %d out of range", m.pc)
	}
	m.steps++
	i := m.prog.Insns[m.pc]
	pc, npc := m.npc, m.npc+1

	switch {
	case i.Op == OpSethi:
		m.set(i.Rd, uint32(i.SImm))

	case i.Op == OpBranch:
		taken := m.cond(i.Cond)
		target := m.pc + int(i.Disp)
		if taken {
			npc = target
			if i.Cond == CondA && i.Annul {
				pc, npc = target, target+1
			}
		} else if i.Annul {
			pc, npc = m.npc+1, m.npc+2
		}

	case i.Op == OpCall:
		m.set(O7, m.prog.AddrOf(m.pc))
		tgt := m.pc + int(i.Disp)
		if tgt >= len(m.prog.Insns) || tgt < 0 {
			m.pendingHost = m.prog.LabelAt(tgt)
			npc = m.pc + 2
		} else {
			npc = tgt
		}

	case i.Op == OpJmpl:
		ret := m.get(i.Rs1) + m.operand2(i)
		m.set(i.Rd, m.prog.AddrOf(m.pc))
		idx, ok := m.prog.IndexOf(ret)
		switch {
		case ok:
			npc = idx
		case ret == 8 || ret == 0:
			npc = exitPC
		default:
			return fmt.Errorf("sparc: jmpl to unmapped address 0x%x", ret)
		}

	case i.Op == OpSave:
		v := m.get(i.Rs1) + m.operand2(i)
		if m.cwp == 0 {
			return fmt.Errorf("sparc: window overflow")
		}
		m.cwp--
		m.set(i.Rd, v)

	case i.Op == OpRestore:
		v := m.get(i.Rs1) + m.operand2(i)
		if m.cwp+2 >= len(m.windows) {
			return fmt.Errorf("sparc: window underflow")
		}
		m.cwp++
		m.set(i.Rd, v)

	case i.IsLoad():
		addr := m.get(i.Rs1) + m.operand2(i)
		switch i.Op {
		case OpLd:
			m.set(i.Rd, m.load32(addr))
		case OpLdub:
			m.set(i.Rd, uint32(m.mem[addr]))
		case OpLdsb:
			m.set(i.Rd, uint32(int32(int8(m.mem[addr]))))
		case OpLduh:
			m.set(i.Rd, uint32(m.mem[addr])<<8|uint32(m.mem[addr+1]))
		case OpLdsh:
			m.set(i.Rd, uint32(int32(int16(uint16(m.mem[addr])<<8|uint16(m.mem[addr+1])))))
		default:
			return fmt.Errorf("sparc: unsupported load %v", i.Op)
		}

	case i.IsStore():
		addr := m.get(i.Rs1) + m.operand2(i)
		v := m.get(i.Rd)
		switch i.Op {
		case OpSt:
			m.store32(addr, v)
		case OpStb:
			m.mem[addr] = byte(v)
		case OpSth:
			m.mem[addr] = byte(v >> 8)
			m.mem[addr+1] = byte(v)
		default:
			return fmt.Errorf("sparc: unsupported store %v", i.Op)
		}

	default:
		a := m.get(i.Rs1)
		b := m.operand2(i)
		var res uint32
		switch i.Op {
		case OpAdd, OpAddcc:
			res = a + b
			if i.Op == OpAddcc {
				v := (a&0x80000000 == b&0x80000000) && (res&0x80000000 != a&0x80000000)
				c := uint64(a)+uint64(b) > 0xffffffff
				m.setCC(res, v, c)
			}
		case OpSub, OpSubcc:
			res = a - b
			if i.Op == OpSubcc {
				v := (a&0x80000000 != b&0x80000000) && (res&0x80000000 == b&0x80000000)
				c := uint64(a) < uint64(b)
				m.setCC(res, v, c)
			}
		case OpAnd, OpAndcc:
			res = a & b
			if i.Op == OpAndcc {
				m.setCC(res, false, false)
			}
		case OpAndn:
			res = a &^ b
		case OpOr, OpOrcc:
			res = a | b
			if i.Op == OpOrcc {
				m.setCC(res, false, false)
			}
		case OpOrn:
			res = a | ^b
		case OpXor, OpXorcc:
			res = a ^ b
			if i.Op == OpXorcc {
				m.setCC(res, false, false)
			}
		case OpXnor:
			res = ^(a ^ b)
		case OpSll:
			res = a << (b & 31)
		case OpSrl:
			res = a >> (b & 31)
		case OpSra:
			res = uint32(int32(a) >> (b & 31))
		case OpUMul, OpSMul:
			res = a * b
		case OpUDiv:
			if b == 0 {
				return fmt.Errorf("sparc: division by zero")
			}
			res = a / b
		case OpSDiv:
			if b == 0 {
				return fmt.Errorf("sparc: division by zero")
			}
			res = uint32(int32(a) / int32(b))
		default:
			return fmt.Errorf("sparc: unsupported op %v", i.Op)
		}
		m.set(i.Rd, res)
	}

	m.pc, m.npc = pc, npc
	if m.pendingHost != "" && m.pc != exitPC {
		name := m.pendingHost
		m.pendingHost = ""
		if i.Op != OpCall {
			m.set(O0, 0)
		} else {
			m.pendingHost = name
		}
	}
	return nil
}

// randDiffInsn generates one encodable instruction, biased toward the
// opcodes the evaluation programs use heavily.
func randDiffInsn(rng *rand.Rand, n int) Insn {
	reg := func() Reg { return Reg(rng.Intn(32)) }
	aluOps := []Op{
		OpAdd, OpAddcc, OpSub, OpSubcc, OpAnd, OpAndcc, OpAndn,
		OpOr, OpOrcc, OpOrn, OpXor, OpXorcc, OpXnor,
		OpSll, OpSrl, OpSra, OpUMul, OpSMul, OpUDiv, OpSDiv,
	}
	memOps := []Op{OpLd, OpLdub, OpLduh, OpLdsb, OpLdsh, OpSt, OpStb, OpSth, OpLdd, OpStd}
	i := Insn{Rd: reg(), Rs1: reg(), Rs2: reg()}
	if rng.Intn(2) == 0 {
		i.Imm = true
		i.SImm = int32(rng.Intn(8192) - 4096)
	}
	switch k := rng.Intn(20); {
	case k < 10:
		i.Op = aluOps[rng.Intn(len(aluOps))]
	case k < 14:
		i.Op = memOps[rng.Intn(len(memOps))]
	case k < 17:
		i.Op = OpBranch
		i.Cond = Cond(rng.Intn(16))
		i.Annul = rng.Intn(2) == 0
		i.Disp = int32(rng.Intn(9) - 4)
		i.Imm = false
	case k == 17:
		i.Op = OpSethi
		i.Imm = true
		i.SImm = int32(rng.Uint32()) &^ 0x3ff
	case k == 18:
		switch rng.Intn(3) {
		case 0:
			i.Op = OpCall
			i.Disp = int32(rng.Intn(2*n) - n/2)
			i.Imm = false
		default:
			i.Op = OpJmpl
		}
	default:
		if rng.Intn(2) == 0 {
			i.Op = OpSave
		} else {
			i.Op = OpRestore
		}
	}
	return i
}

// TestInterpMatchesLegacy runs random programs in lockstep on the
// RTL-driven interpreter and the frozen legacy switch, comparing the
// entire machine state after every step. Errors must coincide (messages
// may differ for instructions outside the checker's subset).
func TestInterpMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const progs = 400
	const maxSteps = 120

	for p := 0; p < progs; p++ {
		n := 8 + rng.Intn(24)
		words := make([]uint32, n)
		for j := range words {
			w, err := Encode(randDiffInsn(rng, n))
			if err != nil {
				t.Fatalf("prog %d insn %d: encode: %v", p, j, err)
			}
			words[j] = w
		}
		prog, err := FromWords(words, 0, nil, nil)
		if err != nil {
			t.Fatalf("prog %d: FromWords: %v", p, err)
		}

		m := NewMachine(prog)
		l := newLegacyMachine(prog)
		// Identical random initial state.
		for r := Reg(1); r < 32; r++ {
			v := rng.Uint32()
			m.SetReg(r, v)
			l.set(r, v)
		}
		for a := 0; a < 16; a++ {
			addr := rng.Uint32() % 256
			b := byte(rng.Uint32())
			m.Mem[addr] = b
			l.mem[addr] = b
		}

		for s := 0; s < maxSteps; s++ {
			errM := m.Step()
			errL := l.step()
			if (errM == nil) != (errL == nil) {
				t.Fatalf("prog %d step %d: rtl err %v, legacy err %v\n%s",
					p, s, errM, errL, prog.Disassemble())
			}
			if errM != nil {
				if (errM == ErrExit) != (errL == ErrExit) {
					t.Fatalf("prog %d step %d: exit mismatch: rtl %v, legacy %v",
						p, s, errM, errL)
				}
				break
			}
			if m.pc != l.pc || m.npc != l.npc || m.cwp != l.cwp ||
				m.N != l.n || m.Z != l.z || m.V != l.v || m.C != l.c ||
				m.pendingHost != l.pendingHost || m.Steps != l.steps {
				t.Fatalf("prog %d step %d: control state diverged\nrtl: pc=%d npc=%d cwp=%d nzvc=%v%v%v%v host=%q\nleg: pc=%d npc=%d cwp=%d nzvc=%v%v%v%v host=%q\n%s",
					p, s, m.pc, m.npc, m.cwp, m.N, m.Z, m.V, m.C, m.pendingHost,
					l.pc, l.npc, l.cwp, l.n, l.z, l.v, l.c, l.pendingHost,
					prog.Disassemble())
			}
			if m.globals != l.globals || !reflect.DeepEqual(m.windows, l.windows) {
				t.Fatalf("prog %d step %d: registers diverged\n%s", p, s, prog.Disassemble())
			}
			if !reflect.DeepEqual(m.Mem, l.mem) {
				t.Fatalf("prog %d step %d: memory diverged", p, s)
			}
		}
	}
}
