// Package propagate implements Phase 2 of the safety-checking analysis:
// typestate propagation (Sections 4.2 and 5.1). A worklist algorithm
// computes the greatest fixed point of the typestate-propagation
// equations over the interprocedural control-flow graph, annotating each
// instruction with an abstract store describing the memory contents
// before its execution. Overload resolution of instructions such as add
// and ld falls out as a by-product: the type components of the operands
// determine whether an occurrence is a scalar operation, an array-index
// calculation, a pointer indirection, or a field access.
package propagate

import (
	"fmt"

	"mcsafe/internal/cfg"
	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
	"mcsafe/internal/rtl"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// UsageKind is the resolved overload of one instruction occurrence
// (the single-usage restriction of Section 4.2.1: each occurrence
// resolves to exactly one kind).
type UsageKind int

const (
	KindUnknown UsageKind = iota
	// KindScalarOp: arithmetic on scalar values.
	KindScalarOp
	// KindArrayIndex: pointer-plus-index producing a t(n] pointer.
	KindArrayIndex
	// KindPtrOffset: pointer plus constant (field address calculation).
	KindPtrOffset
	// KindCopy: register-to-register or constant move.
	KindCopy
	// KindLoad: memory read.
	KindLoad
	// KindStore: memory write.
	KindStore
	// KindCompare: condition-code setting operation.
	KindCompare
	// KindBranch, KindCall, KindRet, KindSave, KindRestore, KindNop:
	// control and window management.
	KindBranch
	KindCall
	KindRet
	KindSave
	KindRestore
	KindNop
)

func (k UsageKind) String() string {
	names := [...]string{"unknown", "scalar-op", "array-index", "ptr-offset",
		"copy", "load", "store", "compare", "branch", "call", "ret", "save",
		"restore", "nop"}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

// Target is one possible destination of a memory access.
type Target struct {
	Loc     string
	Summary bool
}

// MemAccess is the resolution of one load or store: the abstract-location
// set F of Table 1, plus everything the annotation phase needs to build
// the safety predicates of Table 2.
type MemAccess struct {
	Targets []Target
	// Array is true when the base register held a t[n] or t(n] pointer.
	Array    bool
	ElemType *types.Type
	Bound    types.Bound
	// BaseVar is the expr variable of the base register ("" for
	// frame-relative accesses).
	BaseVar string
	// MayNull reports whether the base pointer's points-to set includes
	// null.
	MayNull bool
	// IndexReg is the expr variable of the index register, or "" when
	// the offset is the immediate IndexImm.
	IndexReg string
	IndexImm int32
	// MinAlign is the smallest alignment over the target locations.
	MinAlign int
	// Frame is true for %fp/%sp-relative accesses resolved through a
	// stack-frame annotation.
	Frame bool
	// BaseInterior is true when the base was a t(n] pointer (the index
	// origin is unknown, so bounds checks must cover the base offset).
	BaseInterior bool
}

// Issue is a problem discovered during propagation (unresolvable memory
// access, call into the middle of a procedure, ...). These become
// violations in the checker's report.
type Issue struct {
	Node int
	// Code is the stable violation code charged for the issue (one of
	// the annotate.Code* values, held as a string to avoid an import
	// cycle).
	Code string
	Msg  string
}

// Result is the output of typestate propagation.
type Result struct {
	G    *cfg.Graph
	Ini  *policy.Initial
	rm   *isa.RegModel
	conv *isa.Convention
	mods []*modSet
	// In and Out are the abstract stores before/after each node.
	In, Out []typestate.Store
	// Kind is the resolved usage kind of each node.
	Kind []UsageKind
	// Mem is the memory-access resolution for load/store nodes.
	Mem []*MemAccess
	// Issues are propagation-time errors.
	Issues []Issue
	// Steps counts worklist iterations (reported by benchmarks).
	Steps int
}

// DebugNode, when >= 0, traces meets at one node (tests only).
var DebugNode = -1

// Run performs typestate propagation to a fixed point.
func Run(g *cfg.Graph, ini *policy.Initial) *Result {
	r := &Result{
		G:    g,
		Ini:  ini,
		rm:   g.Prog.Arch.Regs(),
		conv: g.Prog.Arch.Conv(),
		In:   make([]typestate.Store, len(g.Nodes)),
		Out:  make([]typestate.Store, len(g.Nodes)),
		Kind: make([]UsageKind, len(g.Nodes)),
		Mem:  make([]*MemAccess, len(g.Nodes)),
	}
	for i := range r.In {
		r.In[i] = typestate.TopStore()
		r.Out[i] = typestate.TopStore()
	}
	r.mods = computeModSets(g)
	// Return points must be revisited when their call site's pre-state
	// changes (the return-edge transfer reads the delay node's out).
	returnsOfDelay := map[int][]int{}
	for _, site := range g.Sites {
		if site.Callee >= 0 && site.Return >= 0 {
			returnsOfDelay[site.DelayNode] = append(returnsOfDelay[site.DelayNode], site.Return)
		}
	}

	issueSeen := map[string]bool{}
	report := func(node int, code, format string, args ...interface{}) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d:%s", node, msg)
		if !issueSeen[key] {
			issueSeen[key] = true
			r.Issues = append(r.Issues, Issue{Node: node, Code: code, Msg: msg})
		}
	}

	inWork := make([]bool, len(g.Nodes))
	var work []int
	push := func(id int) {
		if !inWork[id] {
			inWork[id] = true
			work = append(work, id)
		}
	}
	push(g.Entry)

	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		r.Steps++

		node := g.Nodes[id]
		if DebugNode == id {
			fmt.Printf("[dbg] processing node %d (insn %d)\n", id, node.Index)
			for _, e := range node.Preds {
				fmt.Printf("[dbg]   pred %d kind=%v topOut=%v g1=%v\n", e.To, e.Kind, r.Out[e.To].Top, r.Out[e.To].Get("%g1"))
			}
		}

		// In = meet over predecessors' edge-transferred outs; the entry
		// node additionally meets the initial annotations.
		in := typestate.TopStore()
		if id == g.Entry {
			in = ini.Entry.Clone()
		}
		for _, e := range node.Preds {
			pred := e.To
			out := r.Out[pred]
			if out.Top {
				continue
			}
			in = in.Meet(r.edgeTransfer(e, pred, id, out))
		}
		if in.Top {
			// Strict in top: propagation through this node is delayed
			// until a non-top value arrives (Section 4.2.1).
			continue
		}
		r.In[id] = in
		out := r.transfer(node, in, report)
		if !out.Equal(r.Out[id]) {
			r.Out[id] = out
			for _, e := range node.Succs {
				push(e.To)
			}
			for _, ret := range returnsOfDelay[id] {
				push(ret)
			}
		}
	}
	return r
}

// edgeTransfer applies edge-specific effects: trusted-call summary edges
// apply the trusted function's typestate summary, and return edges
// restore the caller's values for locations the callee cannot modify
// (per the procedure MOD summaries).
func (r *Result) edgeTransfer(e cfg.Edge, pred, succ int, out typestate.Store) typestate.Store {
	if e.Kind == cfg.EdgeReturn {
		site := r.G.Sites[e.Site]
		callerOut := r.Out[site.DelayNode]
		if callerOut.Top {
			// The call site has not executed yet; this return cannot
			// belong to it.
			return typestate.TopStore()
		}
		ms := r.mods[site.Callee]
		merged := callerOut.Clone()
		for l := range ms.locs {
			merged.SetInPlace(l, out.Get(l))
		}
		if ms.mem {
			for _, k := range out.Keys() {
				if !isRegLoc(k) {
					merged.SetInPlace(k, out.Get(k))
				}
			}
			for _, k := range callerOut.Keys() {
				if !isRegLoc(k) {
					merged.SetInPlace(k, out.Get(k))
				}
			}
		}
		return merged
	}
	if e.Kind != cfg.EdgeSummary {
		return out
	}
	site := r.G.Sites[e.Site]
	if site.TrustedName == "" {
		return out
	}
	tf := r.Ini.Spec.Trusted[site.TrustedName]
	depth := r.G.Nodes[pred].Depth
	s := out.Clone()
	// Caller-saved registers are clobbered by the callee.
	for _, reg := range r.conv.CallClobbered {
		s.SetInPlace(r.rm.Loc(reg, depth), typestate.BottomTS)
	}
	if tf != nil && tf.Ret != nil {
		s.SetInPlace(r.rm.Loc(r.conv.RetReg, depth), *tf.Ret)
	}
	return s
}

func constTS(v int64) typestate.Typestate {
	return typestate.Typestate{
		Type: types.Int32Type, State: typestate.InitState,
		Access: typestate.PermO, Known: true, ConstVal: v,
	}
}

// resolveAddr upgrades a known-constant value that matches a data-symbol
// address into the corresponding pointer typestate.
func (r *Result) resolveAddr(ts typestate.Typestate) typestate.Typestate {
	if !ts.Known {
		return ts
	}
	locName, ok := r.Ini.AddrToLoc[uint32(ts.ConstVal)]
	if !ok {
		return ts
	}
	declared := r.Ini.LocTypes[locName]
	ent := r.Ini.Spec.Entity(locName)
	region := ""
	if ent != nil {
		region = ent.Region
	}
	var ptrType *types.Type
	if declared != nil && (declared.Kind == types.ArrayBase || declared.Kind == types.ArrayIn) {
		// The location holds array elements; its address is the array
		// base pointer.
		ptrType = types.NewArrayBase(declared.Elem, declared.N)
	} else if declared != nil {
		ptrType = types.NewPtr(declared)
	} else {
		return ts
	}
	perm := typestate.PermF | typestate.PermO
	if region != "" {
		if p := r.Ini.Spec.PermsFor(region, ptrType); p != 0 {
			perm = p.ValuePerms()
		}
	}
	return typestate.Typestate{
		Type:   ptrType,
		State:  typestate.PointsTo(false, typestate.Ref{Loc: locName}),
		Access: perm,
		Known:  ts.Known, ConstVal: ts.ConstVal,
	}
}

// exprTS abstracts an RTL operand expression: constants are resolved
// against the data-symbol table (an immediate that matches a symbol
// address becomes that symbol's pointer typestate), register reads go
// through the abstract store.
func (r *Result) exprTS(e rtl.Expr, d int, s typestate.Store) typestate.Typestate {
	switch x := e.(type) {
	case rtl.Const:
		return r.resolveAddr(constTS(x.V))
	case rtl.RegX:
		return r.regTS(x.R, d, s)
	}
	return typestate.BottomTS
}

// isZeroReg reports a read of the hardwired zero register.
func isZeroReg(e rtl.Expr) bool {
	x, ok := e.(rtl.RegX)
	return ok && x.R == rtl.ZeroReg
}

func (r *Result) regTS(reg rtl.Reg, depth int, s typestate.Store) typestate.Typestate {
	if reg == rtl.ZeroReg {
		return constTS(0)
	}
	return s.Get(r.rm.Loc(reg, depth))
}

func (r *Result) setReg(reg rtl.Reg, depth int, s *typestate.Store, ts typestate.Typestate) {
	if reg == rtl.ZeroReg {
		return
	}
	s.SetInPlace(r.rm.Loc(reg, depth), ts)
}

// transfer is the abstract operational semantics R: M -> M of Section
// 4.2, driven by the instruction's lifted RTL effects: control and
// window effects classify the occurrence, memory effects resolve
// through transferMem, and plain assignments go through the overload
// resolution of Table 1.
func (r *Result) transfer(node *cfg.Node, in typestate.Store, report func(int, string, string, ...interface{})) typestate.Store {
	d := node.Depth
	s := in.Clone()

	// Shape of the effect sequence.
	var assign *rtl.Assign
	var ctl rtl.Effect
	var win rtl.Effect
	hasCC := false
	hasMem := false
	for _, eff := range node.RTL {
		switch x := eff.(type) {
		case rtl.Assign:
			a := x
			assign = &a
		case rtl.SetCC:
			hasCC = true
		case rtl.Load, rtl.Store, rtl.Unsupported:
			hasMem = true
		case rtl.Branch, rtl.Call, rtl.Jump:
			ctl = eff
		case rtl.SaveWindow, rtl.RestoreWindow:
			win = eff
		}
	}

	switch ctl.(type) {
	case rtl.Branch:
		r.Kind[node.ID] = KindBranch
		return s
	case rtl.Call, rtl.Jump:
		if _, isCall := ctl.(rtl.Call); isCall {
			r.Kind[node.ID] = KindCall
		} else {
			r.Kind[node.ID] = KindRet
		}
		// The link write materializes the return address: a code
		// address the policy treats as an operable 32-bit value.
		if assign != nil {
			if _, isPC := assign.Src.(rtl.PC); isPC {
				r.setReg(assign.Dst, d, &s, typestate.Typestate{
					Type: types.UInt32Type, State: typestate.InitState, Access: typestate.PermO,
				})
			}
		}
		return s
	}

	switch win.(type) {
	case rtl.SaveWindow:
		r.Kind[node.ID] = KindSave
		// New window: the in registers receive the old outs; locals and
		// outs become undefined; the new %sp is computed from the old one.
		win := r.conv.Window
		var newSP typestate.Typestate
		if bin, ok := assign.Src.(rtl.Bin); ok {
			newSP = scalarOp(r.exprTS(bin.A, d, s), r.exprTS(bin.B, d, s), bin.Op, true)
		}
		for k := rtl.Reg(0); k < rtl.Reg(win.Size); k++ {
			r.setReg(win.In+k, d+1, &s, r.regTS(win.Out+k, d, in))
		}
		for k := rtl.Reg(0); k < rtl.Reg(win.Size); k++ {
			r.setReg(win.Local+k, d+1, &s, typestate.BottomTS)
			if win.Out+k != r.conv.SP {
				r.setReg(win.Out+k, d+1, &s, typestate.BottomTS)
			}
		}
		r.setReg(assign.Dst, d+1, &s, newSP)
		return s

	case rtl.RestoreWindow:
		r.Kind[node.ID] = KindRestore
		var val typestate.Typestate
		if bin, ok := assign.Src.(rtl.Bin); ok {
			val = scalarOp(r.exprTS(bin.A, d, s), r.exprTS(bin.B, d, s), bin.Op, true)
		}
		r.setReg(assign.Dst, d-1, &s, val)
		return s
	}

	if hasMem {
		return r.transferMem(node, in, s, report)
	}
	if assign == nil {
		return s
	}

	// Constant materialization (sethi): a copy, unless it is the
	// canonical nop (a zero write to the zero register).
	if c, ok := assign.Src.(rtl.Const); ok {
		if assign.Dst == rtl.ZeroReg && c.V == 0 {
			r.Kind[node.ID] = KindNop
			return s
		}
		r.Kind[node.ID] = KindCopy
		r.setReg(assign.Dst, d, &s, r.resolveAddr(constTS(c.V)))
		return s
	}

	// Arithmetic and logical operations.
	bin, ok := assign.Src.(rtl.Bin)
	if !ok {
		r.Kind[node.ID] = KindScalarOp
		r.setReg(assign.Dst, d, &s, typestate.BottomTS)
		return s
	}
	a := r.exprTS(bin.A, d, s)
	b := r.exprTS(bin.B, d, s)
	if hasCC && assign.Dst == rtl.ZeroReg {
		r.Kind[node.ID] = KindCompare
		return s
	}

	_, immB := bin.B.(rtl.Const)
	var out typestate.Typestate
	switch {
	case bin.Op == rtl.Or && isZeroReg(bin.A):
		// mov X,rd (synthetic): a pure copy.
		r.Kind[node.ID] = KindCopy
		out = b

	case (bin.Op == rtl.Add || bin.Op == rtl.Sub) &&
		(a.Type.Kind == types.ArrayBase || a.Type.Kind == types.ArrayIn) && b.Type.IsScalar():
		// Array-index calculation (Table 1, row 2): rd becomes t(n].
		r.Kind[node.ID] = KindArrayIndex
		out = typestate.Typestate{
			Type:   types.NewArrayIn(a.Type.Elem, a.Type.N),
			State:  a.State,
			Access: a.Access,
		}

	case bin.Op == rtl.Add &&
		(b.Type.Kind == types.ArrayBase || b.Type.Kind == types.ArrayIn) && a.Type.IsScalar():
		// Commuted array-index calculation.
		r.Kind[node.ID] = KindArrayIndex
		out = typestate.Typestate{
			Type:   types.NewArrayIn(b.Type.Elem, b.Type.N),
			State:  b.State,
			Access: b.Access,
		}

	case (bin.Op == rtl.Add || bin.Op == rtl.Sub) && !hasCC &&
		a.Type.Kind == types.Ptr && b.Known:
		// Field-address calculation: shift the points-to offsets.
		r.Kind[node.ID] = KindPtrOffset
		delta := int(b.ConstVal)
		if bin.Op == rtl.Sub {
			delta = -delta
		}
		out = typestate.Typestate{
			Type:   a.Type,
			State:  a.State.AddOffset(delta),
			Access: a.Access,
		}

	case (bin.Op == rtl.Add || bin.Op == rtl.Sub) && !hasCC && immB &&
		r.frameBase(bin.A) != 0 &&
		r.frameSlotAt(node, r.frameBase(bin.A), frameDelta(bin)) != nil:
		// Address of an annotated stack slot (local-array bases;
		// Section 6's stack-frame annotations).
		slot := r.frameSlotAt(node, r.frameBase(bin.A), frameDelta(bin))
		r.Kind[node.ID] = KindPtrOffset
		if slot.Count > 0 {
			out = typestate.Typestate{
				Type:   types.NewArrayBase(slot.Type, types.ConstBound(int64(slot.Count))),
				State:  typestate.PointsTo(false, typestate.Ref{Loc: slot.Name}),
				Access: typestate.PermF | typestate.PermO,
			}
		} else {
			out = typestate.Typestate{
				Type:   types.NewPtr(slot.Type),
				State:  typestate.PointsTo(false, typestate.Ref{Loc: slot.Name}),
				Access: typestate.PermF | typestate.PermO,
			}
		}

	case a.Type.IsPointer() && b.Type.IsPointer():
		// Pointer meets pointer: no meaningful typestate (Section 4.1).
		r.Kind[node.ID] = KindScalarOp
		out = typestate.BottomTS

	default:
		r.Kind[node.ID] = KindScalarOp
		out = scalarOp(a, b, bin.Op, false)
	}
	r.setReg(assign.Dst, d, &s, out)
	return s
}

// frameBase returns the frame or stack pointer when the expression reads
// one of the frame registers (0 otherwise).
func (r *Result) frameBase(e rtl.Expr) rtl.Reg {
	x, ok := e.(rtl.RegX)
	if !ok {
		return 0
	}
	if x.R == r.conv.FP || x.R == r.conv.SP {
		return x.R
	}
	return 0
}

// scalarOp computes the typestate of a scalar arithmetic result
// (Table 1, row 1): the meet of the operand typestates, with the constant
// refinement folded through the RTL operator semantics when both
// operands are known.
func scalarOp(a, b typestate.Typestate, op rtl.BinOp, keepType bool) typestate.Typestate {
	out := typestate.Typestate{
		Type:   types.Meet(a.Type, b.Type),
		State:  a.State.Meet(b.State),
		Access: a.Access.Meet(b.Access),
	}
	if keepType {
		// save/restore compute stack pointers; keep the first operand's
		// type when the meet degenerates.
		if out.Type.Kind == types.Bottom {
			out.Type = a.Type
		}
		if out.State.Kind == typestate.StateBottom &&
			a.State.Initialized() && b.State.Initialized() {
			out.State = typestate.InitState
		}
		if out.Access == 0 {
			out.Access = typestate.PermO
		}
	}
	if a.Known && b.Known {
		if v, ok := rtl.FoldBin(op, a.ConstVal, b.ConstVal); ok {
			out.Known = true
			out.ConstVal = v
		}
	}
	return out
}
