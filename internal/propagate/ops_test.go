package propagate

// Edge-case operational semantics: operations outside the precise
// fragment must degrade soundly (to bottom / unknown), never crash or
// invent information.

import (
	"testing"

	"mcsafe/internal/cfg"
	"mcsafe/internal/rtl"
	"mcsafe/internal/sparc"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// dstLoc names the destination register of a register-writing
// instruction (its Assign effect), as the abstract store keys it.
func dstLoc(t *testing.T, n *cfg.Node) string {
	t.Helper()
	for _, eff := range n.Insn.RTL {
		if a, ok := eff.(rtl.Assign); ok {
			return sparc.Arch.Regs().Name(a.Dst)
		}
	}
	t.Fatalf("%s: no assign effect", n.Insn.Text)
	return ""
}

const scalarSpec = `
sym a
sym b
invoke %o0 = a
invoke %o1 = b
`

func TestPointerMinusPointerIsBottom(t *testing.T) {
	asm := `
	sub %o0,%o1,%o2
	retl
	nop
`
	spec := `
struct cell { v int }
region H
loc c1 cell region H fields(v=init)
loc c2 cell region H fields(v=init)
val p1 ptr<cell> state {c1} region H
val p2 ptr<cell> state {c2} region H
invoke %o0 = p1
invoke %o1 = p2
allow H cell.v ro
allow H ptr<cell> rfo
`
	r := run(t, asm, spec, "")
	n := nodeByIndex(r, 0)
	out := r.Out[n.ID].Get("%o2")
	if out.Type.Kind != types.Bottom {
		t.Errorf("ptr - ptr = %v, want bottom type", out)
	}
}

func TestDivMulKinds(t *testing.T) {
	asm := `
	umul %o0,%o1,%o2
	sdiv %o2,%o1,%o3
	udiv %o2,%o1,%o4
	smul %o0,3,%o5
	retl
	nop
`
	r := run(t, asm, scalarSpec, "")
	for idx := 0; idx < 4; idx++ {
		n := nodeByIndex(r, idx)
		if r.Kind[n.ID] != KindScalarOp {
			t.Errorf("insn %d kind = %v, want scalar-op", idx, r.Kind[n.ID])
		}
		out := r.Out[n.ID].Get(dstLoc(t, n))
		if out.State.Kind != typestate.StateInit {
			t.Errorf("insn %d result = %v, want initialized", idx, out)
		}
	}
}

func TestShiftConstantsFold(t *testing.T) {
	asm := `
	mov 3,%o2
	sll %o2,4,%o3      ! 48
	srl %o3,2,%o4      ! 12
	sra %o4,1,%o5      ! 6
	retl
	nop
`
	r := run(t, asm, scalarSpec, "")
	last := nodeByIndex(r, 3)
	out := r.Out[last.ID].Get("%o5")
	if !out.Known || out.ConstVal != 6 {
		t.Errorf("constant chain = %v, want known 6", out)
	}
}

func TestAndccOnScalars(t *testing.T) {
	asm := `
	andcc %o0,3,%g0
	be aligned
	nop
	mov 1,%o2
aligned:
	retl
	nop
`
	r := run(t, asm, scalarSpec, "")
	n := nodeByIndex(r, 0)
	if r.Kind[n.ID] != KindCompare {
		t.Errorf("andcc-with-%%g0 kind = %v, want compare", r.Kind[n.ID])
	}
}

func TestSethiNonAddressStaysInt(t *testing.T) {
	asm := `
	sethi %hi(0x12345400),%o2
	retl
	nop
`
	r := run(t, asm, scalarSpec, "")
	n := nodeByIndex(r, 0)
	out := r.Out[n.ID].Get("%o2")
	if !out.Known || uint32(out.ConstVal) != 0x12345400 {
		t.Errorf("sethi = %v", out)
	}
	if out.Type.IsPointer() {
		t.Error("a constant that matches no data symbol must stay an integer")
	}
}

func TestSubwordLoadRefinesType(t *testing.T) {
	asm := `
	ldub [%o0+0],%o2
	ldsh [%o0+2],%o3
	retl
	nop
`
	spec := `
struct rec { b0 uint8 ; b1 uint8 ; h int16 }
region H
loc rc rec region H fields(b0=init, b1=init, h=init)
val rp ptr<rec> state {rc} region H
invoke %o0 = rp
allow H rec.b0 ro
allow H rec.b1 ro
allow H rec.h ro
allow H ptr<rec> rfo
`
	r := run(t, asm, spec, "")
	if len(r.Issues) != 0 {
		t.Fatalf("issues: %+v", r.Issues)
	}
	b := r.Out[nodeByIndex(r, 0).ID].Get("%o2")
	if !b.Type.Equal(types.UInt8Type) {
		t.Errorf("ldub result type = %v", b.Type)
	}
	h := r.Out[nodeByIndex(r, 1).ID].Get("%o3")
	if !h.Type.Equal(types.Int16Type) {
		t.Errorf("ldsh result type = %v", h.Type)
	}
}

func TestByteFieldMisalignedWidthRejected(t *testing.T) {
	// A 4-byte load over two byte fields resolves to no field.
	asm := `
	ld [%o0+0],%o2
	retl
	nop
`
	spec := `
struct rec { b0 uint8 ; b1 uint8 ; h int16 }
region H
loc rc rec region H fields(b0=init, b1=init, h=init)
val rp ptr<rec> state {rc} region H
invoke %o0 = rp
allow H rec.b0 ro
allow H rec.b1 ro
allow H rec.h ro
allow H ptr<rec> rfo
`
	r := run(t, asm, spec, "")
	if len(r.Issues) == 0 {
		t.Fatal("word access over byte fields should be reported")
	}
}

func TestRestoreComputesInOldWindow(t *testing.T) {
	asm := `
f:
	save %sp,-96,%sp
	mov 5,%i0
	ret
	restore %i0,1,%o0   ! caller's %o0 = callee's %i0 + 1
`
	r := run(t, asm, "sym x\ninvoke %o0 = x", "f")
	if len(r.Issues) != 0 {
		t.Fatalf("issues: %+v", r.Issues)
	}
	// The restore node is the replica executed on the return path; find
	// any node whose Out binds depth-0 %o0 to 6.
	found := false
	for _, n := range r.G.Nodes {
		if r.Out[n.ID].Top {
			continue
		}
		o0 := r.Out[n.ID].Get("%o0")
		if o0.Known && o0.ConstVal == 6 {
			found = true
		}
	}
	if !found {
		t.Error("restore should compute 6 into the caller o0")
	}
}
