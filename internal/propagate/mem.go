package propagate

import (
	"sort"

	"mcsafe/internal/cfg"
	"mcsafe/internal/policy"
	"mcsafe/internal/rtl"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// frameDelta returns the effective immediate offset of an add/sub of a
// constant (the lifted form of `add/sub %fp, imm, rd`).
func frameDelta(bin rtl.Bin) int {
	c, ok := bin.B.(rtl.Const)
	if !ok {
		return 0
	}
	if bin.Op == rtl.Sub {
		return -int(c.V)
	}
	return int(c.V)
}

// frameSlotAt looks up a stack-frame annotation slot for the node's
// procedure at the given %fp/%sp offset (exact match only).
func (r *Result) frameSlotAt(node *cfg.Node, base rtl.Reg, off int) *policy.FrameSlot {
	proc := r.G.Procs[node.Proc]
	frames, ok := r.Ini.FrameSlots[proc.Name]
	if !ok {
		return nil
	}
	key := "fp"
	if base == r.conv.SP {
		key = "sp"
	}
	return frames[key][off]
}

// frameSlotCovering finds the slot whose extent covers the given offset
// (for direct [fp+imm] accesses into scalar slots or array slots).
// Offsets are scanned in sorted order so overlapping annotations resolve
// deterministically.
func (r *Result) frameSlotCovering(node *cfg.Node, base rtl.Reg, off, size int) (*policy.FrameSlot, int) {
	proc := r.G.Procs[node.Proc]
	frames, ok := r.Ini.FrameSlots[proc.Name]
	if !ok {
		return nil, 0
	}
	key := "fp"
	if base == r.conv.SP {
		key = "sp"
	}
	offs := make([]int, 0, len(frames[key]))
	for slotOff := range frames[key] {
		offs = append(offs, slotOff)
	}
	sort.Ints(offs)
	for _, slotOff := range offs {
		slot := frames[key][slotOff]
		extent := slot.Type.Size()
		if slot.Count > 0 {
			extent = slot.Type.Size() * slot.Count
		}
		if off >= slotOff && off+size <= slotOff+extent {
			return slot, off - slotOff
		}
	}
	return nil, 0
}

// transferMem implements the abstract semantics of loads and stores
// (Table 1, row 3, and its load counterpart), including the strong/weak
// update distinction and overload resolution of the addressing mode.
// The access shape — width, direction, addressing mode — comes from the
// node's lifted memory effect.
func (r *Result) transferMem(node *cfg.Node, in, s typestate.Store, report func(int, string, string, ...interface{})) typestate.Store {
	d := node.Depth

	// Pull the memory effect out of the RTL sequence.
	var addr rtl.Expr
	var size int
	var isStore, signed bool
	var rd rtl.Reg
	for _, eff := range node.RTL {
		switch x := eff.(type) {
		case rtl.Unsupported:
			report(node.ID, x.Code, "%s", x.Msg)
			r.setReg(x.Dst, d, &s, typestate.BottomTS)
			return s
		case rtl.Load:
			addr, size, signed = x.Addr, x.Size, x.Signed
			rd = x.Dst
		case rtl.Store:
			addr, size, isStore = x.Addr, x.Size, true
			if src, ok := x.Src.(rtl.RegX); ok {
				rd = src.R
			}
		}
	}
	if isStore {
		r.Kind[node.ID] = KindStore
	} else {
		r.Kind[node.ID] = KindLoad
	}

	acc := &MemAccess{MinAlign: 1 << 30}
	r.Mem[node.ID] = acc

	// The lifted effective address is always base + operand2.
	bin := addr.(rtl.Bin)
	base := bin.A.(rtl.RegX).R
	var immOff int
	var idxReg rtl.Reg
	imm := false
	if c, ok := bin.B.(rtl.Const); ok {
		imm = true
		immOff = int(c.V)
		acc.IndexImm = int32(c.V)
	} else {
		idxReg = bin.B.(rtl.RegX).R
		acc.IndexReg = string(r.rm.Var(idxReg, d))
	}

	addTarget := func(locName string) {
		loc, ok := r.Ini.World.Lookup(locName)
		summary := false
		align := 1
		if ok {
			summary = loc.Summary
			align = loc.Align
		}
		for _, t := range acc.Targets {
			if t.Loc == locName {
				return
			}
		}
		acc.Targets = append(acc.Targets, Target{Loc: locName, Summary: summary})
		if align < acc.MinAlign {
			acc.MinAlign = align
		}
	}

	// Frame-relative accesses resolved through stack annotations.
	if (base == r.conv.FP || base == r.conv.SP) && imm {
		if slot, rel := r.frameSlotCovering(node, base, immOff, size); slot != nil {
			acc.Frame = true
			acc.IndexImm = int32(rel)
			if slot.Count > 0 {
				acc.Array = true
				acc.ElemType = slot.Type
				acc.Bound = types.ConstBound(int64(slot.Count))
			}
			addTarget(slot.Name)
			return r.finishMem(node, in, s, acc, isStore, rd, size, signed, report)
		}
	}

	a := r.regTS(base, d, s)
	acc.BaseVar = string(r.rm.Var(base, d))

	switch {
	case a.Type.Kind == types.ArrayBase || a.Type.Kind == types.ArrayIn:
		acc.Array = true
		acc.ElemType = a.Type.Elem
		acc.Bound = a.Type.N
		acc.BaseInterior = a.Type.Kind == types.ArrayIn
		if a.State.Kind != typestate.StatePointsTo {
			report(node.ID, "uninit", "array access through %s whose state is %v", r.rm.Name(base), a.State)
			break
		}
		acc.MayNull = a.State.MayNull
		if acc.ElemType.Size() != size {
			report(node.ID, "policy", "access width %d does not match array element %v", size, acc.ElemType)
		}
		for _, ref := range a.State.Set {
			addTarget(ref.Loc)
		}

	case a.Type.Kind == types.Ptr:
		if a.State.Kind != typestate.StatePointsTo {
			report(node.ID, "uninit", "pointer dereference through %s whose state is %v", r.rm.Name(base), a.State)
			break
		}
		acc.MayNull = a.State.MayNull
		if !imm {
			// A register-indexed access into a non-array object cannot
			// be resolved to fields.
			idx := r.regTS(idxReg, d, s)
			if !idx.Known {
				report(node.ID, "policy", "register-indexed access into non-array object")
				break
			}
			immOff = int(idx.ConstVal)
		}
		for _, ref := range a.State.Set {
			declared := r.Ini.LocTypes[ref.Loc]
			if declared == nil {
				report(node.ID, "policy", "dereference of pointer to unknown location %q", ref.Loc)
				continue
			}
			off := ref.Off + immOff
			if declared.Kind == types.Struct || declared.Kind == types.Union {
				fields := types.LookUp(declared, off, size)
				if len(fields) == 0 {
					report(node.ID, "oob", "no field of %v at offset %d size %d", declared, off, size)
					continue
				}
				for _, f := range fields {
					addTarget(ref.Loc + "." + f.Path)
				}
			} else {
				if off != 0 || declared.Size() != size {
					report(node.ID, "oob", "bad scalar access at offset %d size %d of %v", off, size, declared)
					continue
				}
				addTarget(ref.Loc)
			}
		}

	default:
		report(node.ID, "policy", "memory access through non-pointer %s of type %v", r.rm.Name(base), a.Type)
	}

	return r.finishMem(node, in, s, acc, isStore, rd, size, signed, report)
}

// finishMem applies the load/store effect once the target set F is known.
func (r *Result) finishMem(node *cfg.Node, in, s typestate.Store, acc *MemAccess, isStore bool, rd rtl.Reg, size int, signed bool, report func(int, string, string, ...interface{})) typestate.Store {
	d := node.Depth
	if acc.MinAlign == 1<<30 {
		acc.MinAlign = 1
	}
	if len(acc.Targets) == 0 {
		report(node.ID, "policy", "memory access resolves to no abstract location")
		if !isStore {
			r.setReg(rd, d, &s, typestate.BottomTS)
		}
		return s
	}

	if isStore {
		val := r.regTS(rd, d, in)
		strong := len(acc.Targets) == 1 && !acc.Targets[0].Summary
		for _, t := range acc.Targets {
			if strong {
				s.SetInPlace(t.Loc, val)
			} else {
				s.SetInPlace(t.Loc, val.Meet(s.Get(t.Loc)))
			}
		}
		return s
	}

	// Load: the destination receives the meet over possible sources.
	loaded := typestate.TopTS
	for _, t := range acc.Targets {
		loaded = loaded.Meet(s.Get(t.Loc))
	}
	// Sub-word loads refine the ground type (footnote 2's subtyping).
	switch {
	case size == 1 && !signed:
		loaded.Type = types.Meet(loaded.Type, types.UInt8Type)
	case size == 1 && signed:
		loaded.Type = types.Meet(loaded.Type, types.Int8Type)
	case size == 2 && !signed:
		loaded.Type = types.Meet(loaded.Type, types.UInt16Type)
	case size == 2 && signed:
		loaded.Type = types.Meet(loaded.Type, types.Int16Type)
	}
	loaded.Known = false
	r.setReg(rd, d, &s, loaded)
	return s
}
