package propagate

import (
	"strings"

	"mcsafe/internal/cfg"
	"mcsafe/internal/rtl"
)

// modSet describes the abstract locations a procedure (transitively) may
// modify. Return edges restore the caller's values for everything else,
// which keeps the context-insensitive interprocedural analysis from
// smearing caller-local state across call sites.
type modSet struct {
	locs map[string]bool
	// mem is true when the procedure (transitively) stores to memory or
	// calls a trusted function: all non-register locations count as
	// modified.
	mem bool
}

func isRegLoc(name string) bool {
	return strings.HasPrefix(name, "%") || strings.HasPrefix(name, "w")
}

// computeModSets builds the per-procedure modification summaries,
// processing callees before callers (the call graph is acyclic). The
// written locations of each node are read off its RTL effects.
func computeModSets(g *cfg.Graph) []*modSet {
	sets := make([]*modSet, len(g.Procs))
	rm := g.Prog.Arch.Regs()
	conv := g.Prog.Arch.Conv()

	// Reverse-topological order over the call graph.
	adj := make(map[int][]int)
	for _, site := range g.Sites {
		if site.Callee >= 0 {
			caller := g.Nodes[site.CallNode].Proc
			adj[caller] = append(adj[caller], site.Callee)
		}
	}
	var order []int
	state := make([]int, len(g.Procs))
	var visit func(p int)
	visit = func(p int) {
		state[p] = 1
		for _, q := range adj[p] {
			if state[q] == 0 {
				visit(q)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for p := range g.Procs {
		if state[p] == 0 {
			visit(p)
		}
	}

	for _, pi := range order {
		ms := &modSet{locs: make(map[string]bool)}
		sets[pi] = ms
		for _, id := range g.Procs[pi].Nodes {
			node := g.Nodes[id]
			d := node.Depth
			addReg := func(r rtl.Reg, depth int) {
				if r != rtl.ZeroReg {
					ms.locs[rm.Loc(r, depth)] = true
				}
			}
			for _, eff := range node.RTL {
				switch e := eff.(type) {
				case rtl.SaveWindow:
					// Entering a window makes every register of the new
					// window writable.
					win := conv.Window
					for k := 0; k < win.Size; k++ {
						addReg(win.Out+rtl.Reg(k), d+1)
						addReg(win.Local+rtl.Reg(k), d+1)
						addReg(win.In+rtl.Reg(k), d+1)
					}
				case rtl.Assign:
					switch {
					case e.Win > 0:
						// Subsumed by the SaveWindow sweep above.
					case e.Win < 0:
						addReg(e.Dst, d-1)
					default:
						addReg(e.Dst, d)
					}
				case rtl.Load:
					addReg(e.Dst, d)
				case rtl.Store:
					ms.mem = true
				case rtl.Unsupported:
					if e.Store {
						ms.mem = true
					} else {
						addReg(e.Dst, d)
					}
				case rtl.Call:
					site := siteByCall(g, id)
					if site == nil {
						continue
					}
					if site.Callee >= 0 {
						callee := sets[site.Callee]
						if callee != nil {
							for l := range callee.locs {
								ms.locs[l] = true
							}
							ms.mem = ms.mem || callee.mem
						}
					} else {
						// Trusted call: caller-saved registers plus any
						// host memory.
						for _, r := range conv.CallClobbered {
							addReg(r, d)
						}
						ms.mem = true
					}
				}
			}
		}
	}
	return sets
}

func siteByCall(g *cfg.Graph, id int) *cfg.CallSite {
	for _, s := range g.Sites {
		if s.CallNode == id {
			return s
		}
	}
	return nil
}
