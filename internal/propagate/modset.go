package propagate

import (
	"strings"

	"mcsafe/internal/cfg"
	"mcsafe/internal/policy"
	"mcsafe/internal/sparc"
)

// modSet describes the abstract locations a procedure (transitively) may
// modify. Return edges restore the caller's values for everything else,
// which keeps the context-insensitive interprocedural analysis from
// smearing caller-local state across call sites.
type modSet struct {
	locs map[string]bool
	// mem is true when the procedure (transitively) stores to memory or
	// calls a trusted function: all non-register locations count as
	// modified.
	mem bool
}

func isRegLoc(name string) bool {
	return strings.HasPrefix(name, "%") || strings.HasPrefix(name, "w")
}

// computeModSets builds the per-procedure modification summaries,
// processing callees before callers (the call graph is acyclic).
func computeModSets(g *cfg.Graph) []*modSet {
	sets := make([]*modSet, len(g.Procs))

	// Reverse-topological order over the call graph.
	adj := make(map[int][]int)
	for _, site := range g.Sites {
		if site.Callee >= 0 {
			caller := g.Nodes[site.CallNode].Proc
			adj[caller] = append(adj[caller], site.Callee)
		}
	}
	var order []int
	state := make([]int, len(g.Procs))
	var visit func(p int)
	visit = func(p int) {
		state[p] = 1
		for _, q := range adj[p] {
			if state[q] == 0 {
				visit(q)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for p := range g.Procs {
		if state[p] == 0 {
			visit(p)
		}
	}

	for _, pi := range order {
		ms := &modSet{locs: make(map[string]bool)}
		sets[pi] = ms
		for _, id := range g.Procs[pi].Nodes {
			node := g.Nodes[id]
			insn := node.Insn
			d := node.Depth
			addReg := func(r sparc.Reg, depth int) {
				if r != sparc.G0 {
					ms.locs[policy.RegLoc(r, depth)] = true
				}
			}
			switch {
			case insn.Op == sparc.OpSave:
				for k := sparc.Reg(8); k < 32; k++ {
					addReg(k, d+1)
				}
			case insn.Op == sparc.OpRestore:
				addReg(insn.Rd, d-1)
			case insn.Op == sparc.OpCall:
				addReg(sparc.O7, d)
				site := siteByCall(g, id)
				if site == nil {
					continue
				}
				if site.Callee >= 0 {
					callee := sets[site.Callee]
					if callee != nil {
						for l := range callee.locs {
							ms.locs[l] = true
						}
						ms.mem = ms.mem || callee.mem
					}
				} else {
					// Trusted call: caller-saved registers plus any
					// host memory.
					for _, r := range []sparc.Reg{8, 9, 10, 11, 12, 13, 1, 2, 3, 4, 5} {
						addReg(r, d)
					}
					ms.mem = true
				}
			case insn.IsStore():
				ms.mem = true
			case insn.Op == sparc.OpBranch || insn.Op == sparc.OpJmpl || insn.Op == sparc.OpSethi && insn.IsNop():
			default:
				addReg(insn.Rd, d)
			}
		}
	}
	return sets
}

func siteByCall(g *cfg.Graph, id int) *cfg.CallSite {
	for _, s := range g.Sites {
		if s.CallNode == id {
			return s
		}
	}
	return nil
}
