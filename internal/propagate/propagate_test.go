package propagate

import (
	"testing"

	"mcsafe/internal/cfg"
	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
	"mcsafe/internal/sparc"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

const fig1Source = `
1:  mov %o0,%o2
2:  clr %o0
3:  cmp %o0,%o1
4:  bge 12
5:  clr %g3
6:  sll %g3,2,%g2
7:  ld [%o2+%g2],%g2
8:  inc %g3
9:  cmp %g3,%o1
10: bl 6
11: add %o0,%g2,%o0
12: retl
13: nop
`

const fig1Spec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

func run(t *testing.T, asm, spec string, entry string) *Result {
	t.Helper()
	s, err := policy.Parse(spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	ini, err := policy.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{DataSyms: s.DataSyms(), Entry: entry})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog, cfg.Options{TrustedFuncs: s.TrustedNames()})
	if err != nil {
		t.Fatal(err)
	}
	return Run(g, ini)
}

// nodeByIndex returns the primary (non-replica) node for an instruction.
func nodeByIndex(r *Result, idx int) *cfg.Node {
	for _, n := range r.G.Nodes {
		if n.Index == idx && !n.Replica {
			return n
		}
	}
	return nil
}

// TestFig6TypestatePropagation reproduces the key rows of Figure 6: the
// abstract stores computed before each instruction of the array-summation
// example.
func TestFig6TypestatePropagation(t *testing.T) {
	r := run(t, fig1Source, fig1Spec, "")
	if len(r.Issues) != 0 {
		t.Fatalf("unexpected issues: %+v", r.Issues)
	}

	// Before line 1: %o0 holds the array base pointer, %o1 the size.
	in0 := r.In[nodeByIndex(r, 0).ID]
	o0 := in0.Get("%o0")
	if o0.Type.Kind != types.ArrayBase {
		t.Errorf("line 1 %%o0 = %v", o0)
	}

	// Before line 2 (after the mov): %o2 also points to e.
	in1 := r.In[nodeByIndex(r, 1).ID]
	o2 := in1.Get("%o2")
	if o2.Type.Kind != types.ArrayBase || o2.State.Kind != typestate.StatePointsTo ||
		len(o2.State.Set) != 1 || o2.State.Set[0].Loc != "e" {
		t.Errorf("line 2 %%o2 = %v", o2)
	}

	// Before line 3: %o0 is the integer 0.
	in2 := r.In[nodeByIndex(r, 2).ID]
	if got := in2.Get("%o0"); !got.Known || got.ConstVal != 0 || !got.Type.Equal(types.Int32Type) {
		t.Errorf("line 3 %%o0 = %v", got)
	}

	// Before line 7 (the ld): %o2 holds the base address of an integer
	// array and %g2 is an integer — this is what makes the ld resolve
	// as an array access (Section 5.1).
	ld := nodeByIndex(r, 6)
	in6 := r.In[ld.ID]
	if got := in6.Get("%o2"); got.Type.Kind != types.ArrayBase {
		t.Errorf("line 7 %%o2 = %v", got)
	}
	if got := in6.Get("%g2"); !got.Type.IsScalar() || got.State.Kind != typestate.StateInit {
		t.Errorf("line 7 %%g2 = %v", got)
	}

	// The ld resolved as an array load from summary location e.
	if r.Kind[ld.ID] != KindLoad {
		t.Fatalf("ld kind = %v", r.Kind[ld.ID])
	}
	acc := r.Mem[ld.ID]
	if acc == nil || !acc.Array || len(acc.Targets) != 1 || acc.Targets[0].Loc != "e" {
		t.Fatalf("ld resolution = %+v", acc)
	}
	if !acc.Targets[0].Summary {
		t.Error("e should be a summary location")
	}
	if acc.Bound.Name != "n" || acc.ElemType != types.Int32Type {
		t.Errorf("ld bound/elem = %v %v", acc.Bound, acc.ElemType)
	}
	if acc.IndexReg != "%g2" || acc.BaseVar != "%o2" {
		t.Errorf("ld index/base = %q %q", acc.IndexReg, acc.BaseVar)
	}
	if acc.MayNull {
		t.Error("arr is non-null")
	}

	// After the ld, %g2 holds an initialized integer (the element).
	out := r.Out[ld.ID].Get("%g2")
	if !out.Type.Equal(types.Int32Type) || out.State.Kind != typestate.StateInit {
		t.Errorf("loaded %%g2 = %v", out)
	}

	// Line 11 (add %o0,%g2,%o0) is a scalar add.
	if k := r.Kind[nodeByIndex(r, 10).ID]; k != KindScalarOp {
		t.Errorf("line 11 kind = %v", k)
	}
	// Line 6 (sll) is a scalar op; line 3 cmp resolves as compare.
	if k := r.Kind[nodeByIndex(r, 5).ID]; k != KindScalarOp {
		t.Errorf("sll kind = %v", k)
	}
	if k := r.Kind[nodeByIndex(r, 2).ID]; k != KindCompare {
		t.Errorf("cmp kind = %v", k)
	}
}

// Thread-list traversal (the Section 2 policy): following next pointers
// converges to a fixed point.
func TestThreadListTraversal(t *testing.T) {
	asm := `
loop:
	cmp %o0,%g0
	be done
	nop
	ld [%o0+0],%o1     ! tid
	ld [%o0+8],%o0     ! next
	ba loop
	nop
done:
	retl
	nop
`
	spec := `
struct thread { tid int ; lwpid int ; next ptr<thread> }
region H
loc t thread region H summary fields(tid=init, lwpid=init, next={t,null})
val tlist ptr<thread> state {t,null} region H
invoke %o0 = tlist
allow H thread.tid ro
allow H thread.lwpid ro
allow H thread.next rfo
allow H ptr<thread> rfo
`
	r := run(t, asm, spec, "loop")
	if len(r.Issues) != 0 {
		t.Fatalf("issues: %+v", r.Issues)
	}
	// The tid load resolves to t.tid.
	tidLd := nodeByIndex(r, 3)
	acc := r.Mem[tidLd.ID]
	if acc == nil || len(acc.Targets) != 1 || acc.Targets[0].Loc != "t.tid" {
		t.Fatalf("tid load = %+v", acc)
	}
	if acc.MayNull {
		// %o0 may be null here: the be/cmp does not refine typestate
		// (path sensitivity comes from the verification phase).
		t.Log("tid load may be null — expected, verified globally")
	}
	// The next load resolves to t.next and keeps %o0 a thread pointer.
	nextLd := nodeByIndex(r, 4)
	acc2 := r.Mem[nextLd.ID]
	if acc2 == nil || len(acc2.Targets) != 1 || acc2.Targets[0].Loc != "t.next" {
		t.Fatalf("next load = %+v", acc2)
	}
	o0 := r.Out[nextLd.ID].Get("%o0")
	if o0.Type.Kind != types.Ptr || o0.State.Kind != typestate.StatePointsTo || !o0.State.MayNull {
		t.Errorf("%%o0 after next load = %v", o0)
	}
}

func TestFieldStoreStrongWeak(t *testing.T) {
	asm := `
	st %o1,[%o0+4]
	retl
	nop
`
	// Non-summary struct: strong update; summary struct: weak update.
	strongSpec := `
struct pair { a int ; b int }
region H
loc p pair region H fields(a=init, b=uninit)
val pp ptr<pair> state {p} region H
sym v
invoke %o0 = pp
invoke %o1 = v
allow H pair.a rwo
allow H pair.b rwo
allow H ptr<pair> rfo
`
	r := run(t, asm, strongSpec, "")
	st := nodeByIndex(r, 0)
	if r.Kind[st.ID] != KindStore {
		t.Fatalf("kind = %v", r.Kind[st.ID])
	}
	acc := r.Mem[st.ID]
	if len(acc.Targets) != 1 || acc.Targets[0].Loc != "p.b" {
		t.Fatalf("store targets = %+v", acc.Targets)
	}
	// Strong update: p.b becomes initialized.
	if got := r.Out[st.ID].Get("p.b"); got.State.Kind != typestate.StateInit {
		t.Errorf("p.b after strong store = %v", got)
	}

	weakSpec := `
struct pair { a int ; b int }
region H
loc p pair region H summary fields(a=init, b=uninit)
val pp ptr<pair> state {p} region H
sym v
invoke %o0 = pp
invoke %o1 = v
allow H pair.a rwo
allow H pair.b rwo
allow H ptr<pair> rfo
`
	r2 := run(t, asm, weakSpec, "")
	st2 := nodeByIndex(r2, 0)
	// Weak update: meet of stored value (init) and old (uninit) = bottom.
	if got := r2.Out[st2.ID].Get("p.b"); got.State.Kind != typestate.StateBottom {
		t.Errorf("p.b after weak store = %v", got)
	}
}

func TestSaveRestoreWindowShift(t *testing.T) {
	asm := `
main:
	save %sp,-96,%sp
	mov %i0,%o0
	ret
	restore
`
	spec := `
sym x
invoke %o0 = x
`
	r := run(t, asm, spec, "main")
	if len(r.Issues) != 0 {
		t.Fatalf("issues: %+v", r.Issues)
	}
	// After save, w1.%i0 holds what %o0 held at depth 0.
	save := nodeByIndex(r, 0)
	i0 := r.Out[save.ID].Get("w1.%i0")
	if i0.State.Kind != typestate.StateInit || !i0.Type.Equal(types.Int32Type) {
		t.Errorf("w1.%%i0 after save = %v", i0)
	}
	// Locals of the new window are undefined.
	if got := r.Out[save.ID].Get("w1.%l0"); got.State.Kind != typestate.StateBottom {
		t.Errorf("w1.%%l0 after save = %v", got)
	}
	// New %sp is an initialized stack pointer.
	if got := r.Out[save.ID].Get("w1.%sp"); got.State.Kind != typestate.StateInit {
		t.Errorf("w1.%%sp after save = %v", got)
	}
	// The mov copies within window 1.
	mov := nodeByIndex(r, 1)
	if got := r.Out[mov.ID].Get("w1.%o0"); got.State.Kind != typestate.StateInit {
		t.Errorf("w1.%%o0 after mov = %v", got)
	}
}

func TestTrustedCallSummary(t *testing.T) {
	asm := `
main:
	call gettime
	nop
	add %o0,1,%o1
	retl
	nop
gettime:
	retl
	nop
`
	// Mark gettime trusted via the spec; it must NOT be part of the
	// program for a trusted call, so point the call at a stub label and
	// declare it trusted. The cfg resolves internal procedures first,
	// so here we exercise the trusted summary by removing the callee
	// body — calls to labels inside the program resolve internally.
	spec := `
trusted gettime args 0
  ret int init perm o
  post %o0 >= 1
end
`
	// Assemble without the callee to force the trusted path.
	asmTrusted := `
main:
	call gettime
	nop
	add %o0,1,%o1
	retl
	nop
gettime:
`
	_ = asm
	r := run(t, asmTrusted, spec, "main")
	if len(r.Issues) != 0 {
		t.Fatalf("issues: %+v", r.Issues)
	}
	// After the call, %o0 carries the declared return typestate and the
	// add is a scalar op on it.
	add := nodeByIndex(r, 2)
	o0 := r.In[add.ID].Get("%o0")
	if o0.State.Kind != typestate.StateInit || !o0.Type.Equal(types.Int32Type) {
		t.Errorf("%%o0 after trusted call = %v", o0)
	}
	// Other caller-saved registers are clobbered.
	if got := r.In[add.ID].Get("%o1"); got.State.Kind != typestate.StateBottom {
		t.Errorf("%%o1 after trusted call = %v", got)
	}
	if r.Kind[add.ID] != KindScalarOp {
		t.Errorf("add kind = %v", r.Kind[add.ID])
	}
}

func TestFrameSlots(t *testing.T) {
	asm := `
f:
	save %sp,-112,%sp
	st %g0,[%fp-8]
	ld [%fp-8],%l0
	add %fp,-24,%l1
	st %l0,[%l1+4]
	ret
	restore
`
	spec := `
frame f size 112
  slot fp-8 int name tmp
  slot fp-24 int[4] name buf
end
`
	r := run(t, asm, spec, "f")
	if len(r.Issues) != 0 {
		t.Fatalf("issues: %+v", r.Issues)
	}
	// Store to [fp-8] resolves to the scalar slot.
	st := nodeByIndex(r, 1)
	if acc := r.Mem[st.ID]; acc == nil || !acc.Frame || acc.Targets[0].Loc != "tmp" {
		t.Fatalf("fp store = %+v", r.Mem[st.ID])
	}
	// After the store, tmp is initialized; the load gets an int.
	ld := nodeByIndex(r, 2)
	if got := r.In[ld.ID].Get("tmp"); got.State.Kind != typestate.StateInit {
		t.Errorf("tmp = %v", got)
	}
	// add %fp,-24 produces a pointer to the local array summary.
	addr := nodeByIndex(r, 3)
	if r.Kind[addr.ID] != KindPtrOffset {
		t.Errorf("addr kind = %v", r.Kind[addr.ID])
	}
	l1 := r.Out[addr.ID].Get("w1.%l1")
	if l1.Type.Kind != types.ArrayBase || l1.Type.N.Const != 4 {
		t.Fatalf("w1.%%l1 = %v", l1)
	}
	// The [l1+4] store is an array store into buf.
	ast := nodeByIndex(r, 4)
	acc := r.Mem[ast.ID]
	if acc == nil || !acc.Array || acc.Targets[0].Loc != "buf" {
		t.Fatalf("array store = %+v", acc)
	}
	if acc.Bound.Const != 4 {
		t.Errorf("bound = %v", acc.Bound)
	}
}

func TestGlobalAddressFormation(t *testing.T) {
	asm := `
	set counter,%o0
	ld [%o0],%o1
	retl
	nop
`
	spec := `
region H
global counter int state init region H addr 0x20400
allow H int rwo
allow H ptr<int> rfo
`
	r := run(t, asm, spec, "")
	if len(r.Issues) != 0 {
		t.Fatalf("issues: %+v", r.Issues)
	}
	setN := nodeByIndex(r, 0)
	o0 := r.Out[setN.ID].Get("%o0")
	if o0.Type.Kind != types.Ptr {
		t.Fatalf("%%o0 after set = %v", o0)
	}
	ld := nodeByIndex(r, 1)
	acc := r.Mem[ld.ID]
	if acc == nil || len(acc.Targets) != 1 || acc.Targets[0].Loc != "counter" {
		t.Fatalf("global load = %+v", acc)
	}
	if got := r.Out[ld.ID].Get("%o1"); got.State.Kind != typestate.StateInit {
		t.Errorf("loaded counter = %v", got)
	}
}

func TestUnresolvableAccessReported(t *testing.T) {
	asm := `
	ld [%o0],%o1
	retl
	nop
`
	// %o0 is an integer, not a pointer.
	spec := `
sym x
invoke %o0 = x
`
	r := run(t, asm, spec, "")
	if len(r.Issues) == 0 {
		t.Fatal("dereference of an integer should be reported")
	}
	ld := nodeByIndex(r, 0)
	if got := r.Out[ld.ID].Get("%o1"); got.State.Kind != typestate.StateBottom {
		t.Errorf("failed load should produce bottom, got %v", got)
	}
}

func TestWrongWidthArrayAccess(t *testing.T) {
	asm := `
	ldub [%o0],%o1
	retl
	nop
`
	r := run(t, asm, fig1Spec, "")
	if len(r.Issues) == 0 {
		t.Fatal("byte access to an int array should be reported")
	}
}

func TestUninitializedMeet(t *testing.T) {
	// Conditional initialization: %o2 is set on only one path, so after
	// the join its state must be bottom (meet of init and bottom).
	asm := `
	cmp %o0,%g0
	be skip
	nop
	mov 1,%o2
skip:
	add %o2,1,%o3
	retl
	nop
`
	spec := `
sym x
invoke %o0 = x
`
	r := run(t, asm, spec, "")
	add := nodeByIndex(r, 4)
	if got := r.In[add.ID].Get("%o2"); got.State.Kind != typestate.StateBottom {
		t.Errorf("%%o2 at join = %v", got)
	}
}

func TestStrictInTopDelaysLoops(t *testing.T) {
	// Propagation must terminate and produce non-top stores for all
	// reachable nodes of the Figure 1 loop.
	r := run(t, fig1Source, fig1Spec, "")
	for _, n := range r.G.Nodes {
		if len(n.Preds) == 0 && n.ID != r.G.Entry {
			continue // unreachable
		}
		if r.In[n.ID].Top {
			t.Errorf("node %d (insn %d) still top", n.ID, n.Index)
		}
	}
	if r.Steps == 0 {
		t.Error("no propagation steps recorded")
	}
}
