// Package faults_test drives real checks through the fault-injection
// harness: every robustness boundary in the pipeline is exercised with
// panics, delays, and forced cancellations, and the checker must always
// terminate with a well-formed Result or a structured error — never a
// process crash, a hang, or a leaked goroutine.
//
// The sweeps are deterministic: a failing combination replays from its
// seed alone. The ordinary run uses a small program set and seed range;
// MCSAFE_CHAOS=full (the nightly chaos tier) sweeps every benchmark and
// a much wider seed space.
package faults_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"mcsafe/internal/core"
	"mcsafe/internal/difftest"
	"mcsafe/internal/faults"
	"mcsafe/internal/leakcheck"
	"mcsafe/internal/policy"
	"mcsafe/internal/progs"
	"mcsafe/internal/sparc"
)

// chaosFull reports whether the nightly full sweep is requested.
func chaosFull() bool { return os.Getenv("MCSAFE_CHAOS") == "full" }

// chaosPrograms picks the benchmark set: a fast trio ordinarily, every
// benchmark under MCSAFE_CHAOS=full.
func chaosPrograms() []string {
	if chaosFull() {
		var names []string
		for _, b := range progs.All() {
			names = append(names, b.Name)
		}
		return names
	}
	return []string{"Sum", "Hash", "StartTimer"}
}

// built caches program builds so the sweeps don't re-assemble per seed.
var built = map[string]struct {
	prog *sparc.Program
	spec *policy.Spec
}{}

func buildProg(t *testing.T, name string) (*sparc.Program, *policy.Spec) {
	t.Helper()
	if c, ok := built[name]; ok {
		return c.prog, c.spec
	}
	b := progs.Get(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	prog, spec, err := b.BuildNative()
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	built[name] = struct {
		prog *sparc.Program
		spec *policy.Spec
	}{prog, spec}
	return prog, spec
}

// assertWellFormed is the chaos invariant: exactly one of res/err, a
// structured *PhaseError on the error path, injected panics recognizable
// as such, and a Result whose violations render without panicking.
// strictErr additionally requires every error to be a *PhaseError (true
// for original programs, which never fail analysis on the merits; false
// for mutants, which may be rejected with plain analysis errors).
func assertWellFormed(t *testing.T, tag string, f faults.Fault, res *core.Result, err error, strictErr bool) {
	t.Helper()
	if (res == nil) == (err == nil) {
		t.Fatalf("%s: want exactly one of result/error, got res=%v err=%v", tag, res, err)
	}
	if err != nil {
		var pe *core.PhaseError
		if errors.As(err, &pe) {
			if pe.Phase == "" {
				t.Errorf("%s: PhaseError with empty phase: %v", tag, err)
			}
		} else if strictErr {
			t.Errorf("%s: unstructured error: %v", tag, err)
		}
		var ie *core.InternalError
		if errors.As(err, &ie) {
			// A contained panic must be the injected one — anything else
			// is a genuine checker bug the injection shook loose.
			if f.Kind != faults.Panic || !strings.Contains(ie.Panic, "injected panic") {
				t.Errorf("%s: internal error not attributable to the injected fault: %v", tag, err)
			}
			if ie.ProgramHash == 0 {
				t.Errorf("%s: InternalError without a program hash", tag)
			}
		}
		return
	}
	if !res.Safe && len(res.Violations) == 0 {
		t.Errorf("%s: unsafe result with no violations", tag)
	}
	for _, v := range res.Violations {
		if v.Code == "" {
			t.Errorf("%s: violation without a code: %v", tag, v)
		}
		if res.Explain(v) == "" {
			t.Errorf("%s: empty explanation for %v", tag, v)
		}
	}
}

// TestChaosSeedSweep drives the benchmark originals through
// seed-derived faults: any (point, kind, hit) combination must leave
// the checker terminating, structured, and leak-free.
func TestChaosSeedSweep(t *testing.T) {
	defer leakcheck.Check(t)()
	names := chaosPrograms()
	seeds := int64(24)
	if chaosFull() {
		seeds = 200
	}
	for seed := int64(1); seed <= seeds; seed++ {
		name := names[seed%int64(len(names))]
		prog, spec := buildProg(t, name)
		ctx, cancel := context.WithCancel(context.Background())
		plan, f := faults.PlanFromSeed(seed, cancel)
		restore := faults.Activate(plan)
		res, err := core.CheckContext(ctx, sparc.ToISA(prog), spec, core.Options{
			// The deadline bounds Repeat-delay faults; it is generous
			// enough that no fast benchmark ever trips it on the merits.
			Budget: core.Budget{Deadline: 2 * time.Second},
		})
		restore()
		cancel()
		assertWellFormed(t, fmt.Sprintf("seed %d (%s, %s@%s#%d)", seed, name, f.Kind, f.Point, f.After),
			f, res, err, true)
	}
}

// TestChaosMutants drives single-word mutants through the same faults:
// malformed inputs and injected misbehavior together must still never
// crash, hang, or leak.
func TestChaosMutants(t *testing.T) {
	defer leakcheck.Check(t)()
	perProg, seedsPer := 6, int64(4)
	if chaosFull() {
		perProg, seedsPer = 20, 10
	}
	for _, name := range chaosPrograms() {
		prog, spec := buildProg(t, name)
		rng := rand.New(rand.NewSource(42))
		for mi, m := range difftest.Mutants(prog, rng, perProg) {
			mp, err := m.Apply(prog)
			if err != nil {
				continue
			}
			for seed := int64(1); seed <= seedsPer; seed++ {
				ctx, cancel := context.WithCancel(context.Background())
				plan, f := faults.PlanFromSeed(seed*1000003+int64(mi), cancel)
				restore := faults.Activate(plan)
				res, cerr := core.CheckContext(ctx, sparc.ToISA(mp), spec, core.Options{
					Budget: core.Budget{Deadline: 2 * time.Second},
				})
				restore()
				cancel()
				assertWellFormed(t, fmt.Sprintf("%s mutant %d (%s) seed %d", name, mi, m.Desc, seed),
					f, res, cerr, false)
			}
		}
	}
}

// TestPanicContainedAtEveryPoint arms a first-hit panic at each
// injection point in turn and asserts the structured-error contract:
// a *PhaseError wrapping an *InternalError that names the phase,
// carries the program hash, and records the injected panic value.
func TestPanicContainedAtEveryPoint(t *testing.T) {
	defer leakcheck.Check(t)()
	prog, spec := buildProg(t, "Sum")
	wantPhase := map[faults.Point]string{
		faults.Lift:        "prepare",
		faults.SolverStep:  "global",
		faults.CacheLookup: "global",
		faults.WorkerStart: "global",
	}
	for _, pt := range faults.Points {
		restore := faults.Activate(faults.NewPlan(faults.Fault{Point: pt, Kind: faults.Panic}))
		// Parallelism 4 keeps the proving pool (and so WorkerStart and
		// the shared cache) on the exercised path.
		res, err := core.Check(sparc.ToISA(prog), spec, core.Options{Parallelism: 4})
		restore()
		if err == nil {
			t.Errorf("%s: panic produced no error (res=%+v)", pt, res)
			continue
		}
		var pe *core.PhaseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error is not a *PhaseError: %v", pt, err)
			continue
		}
		if pe.Phase != wantPhase[pt] {
			t.Errorf("%s: phase %q, want %q", pt, pe.Phase, wantPhase[pt])
		}
		var ie *core.InternalError
		if !errors.As(err, &ie) {
			t.Errorf("%s: error does not wrap an *InternalError: %v", pt, err)
			continue
		}
		if !strings.Contains(ie.Panic, "injected panic at "+string(pt)) {
			t.Errorf("%s: panic value not recorded: %q", pt, ie.Panic)
		}
		if ie.ProgramHash != core.ProgramHash(sparc.ToISA(prog)) {
			t.Errorf("%s: program hash %016x, want %016x", pt, ie.ProgramHash, core.ProgramHash(sparc.ToISA(prog)))
		}
		if len(ie.Stack) == 0 {
			t.Errorf("%s: InternalError without a stack", pt)
		}
	}
}

// TestBatchSurvivesPanickingItem: in a CheckAll batch, a fault that
// panics one item's check must yield a structured error for that item
// while the batch itself completes and every outcome stays exclusive.
func TestBatchSurvivesPanickingItem(t *testing.T) {
	defer leakcheck.Check(t)()
	var items []core.CheckItem
	for _, name := range chaosPrograms() {
		prog, spec := buildProg(t, name)
		items = append(items, core.CheckItem{Prog: sparc.ToISA(prog), Spec: spec})
	}
	// The third solver tick panics: items with global conditions fail
	// with a contained error; any item that never reaches a third tick
	// completes normally. Either way the batch must return len(items)
	// exclusive outcomes.
	restore := faults.Activate(faults.NewPlan(faults.Fault{
		Point: faults.SolverStep, Kind: faults.Panic, After: 3, Repeat: true,
	}))
	outs := core.CheckAll(items, 2)
	restore()
	if len(outs) != len(items) {
		t.Fatalf("batch returned %d outcomes for %d items", len(outs), len(items))
	}
	sawError := false
	for i, o := range outs {
		if (o.Result == nil) == (o.Err == nil) {
			t.Errorf("item %d: want exactly one of result/error, got %+v", i, o)
		}
		if o.Err != nil {
			sawError = true
			var pe *core.PhaseError
			if !errors.As(o.Err, &pe) {
				t.Errorf("item %d: unstructured batch error: %v", i, o.Err)
			}
		}
	}
	if !sawError {
		t.Error("no item hit the injected panic; the fault plan is miswired")
	}
}

// TestChaosLeavesNoResidue: after a faulted (and disarmed) run, a clean
// check must be bit-identical to one that never saw injection — the
// harness is process-global state and must restore completely.
func TestChaosLeavesNoResidue(t *testing.T) {
	defer leakcheck.Check(t)()
	prog, spec := buildProg(t, "Sum")
	baseline, err := core.Check(sparc.ToISA(prog), spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	restore := faults.Activate(faults.NewPlan(faults.Fault{Point: faults.SolverStep, Kind: faults.Panic}))
	if _, err := core.Check(sparc.ToISA(prog), spec, core.Options{}); err == nil {
		t.Fatal("armed panic produced no error")
	}
	restore()
	if faults.Active() {
		t.Fatal("plan still armed after restore")
	}

	after, err := core.Check(sparc.ToISA(prog), spec, core.Options{})
	if err != nil {
		t.Fatalf("clean check after chaos failed: %v", err)
	}
	if after.Safe != baseline.Safe || len(after.Violations) != len(baseline.Violations) ||
		after.Stats != baseline.Stats {
		t.Errorf("residue: baseline safe=%v stats=%+v, after safe=%v stats=%+v",
			baseline.Safe, baseline.Stats, after.Safe, after.Stats)
	}
}
