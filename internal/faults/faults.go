// Package faults is the checker's deterministic fault-injection
// harness. The pipeline's robustness-critical boundaries — the solver's
// step loop, the formula-cache lookup, the proving pool's worker start,
// and the CFG builder's per-instruction RTL walk — each call Fire at a named Point; a test
// arms a Plan describing which points misbehave and how (panic, delay,
// forced cancellation), drives a real check, and asserts the checker
// still terminates with a well-formed Result or structured error.
//
// Injection is deterministic and seed-addressable: a Fault fires on an
// exact hit count (After) at an exact point, so a failing combination
// replays from its (point, kind, after) triple alone, and PlanFromSeed
// derives such triples from a single integer for sweep-style tests.
//
// When no plan is armed — the production state — Fire costs one atomic
// pointer load and a nil compare. Arming is process-global: tests that
// inject faults must not run in parallel with tests that expect a clean
// checker (the Go test runner's default sequential execution within a
// package satisfies this).
package faults

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Point names one injection site in the pipeline.
type Point string

const (
	// SolverStep fires on every unit of prover work (the same tick the
	// step budget counts): eliminations, residue-enumeration leaves,
	// quantifier-elimination nodes.
	SolverStep Point = "solver-step"
	// CacheLookup fires on every shared formula-cache lookup.
	CacheLookup Point = "cache-lookup"
	// WorkerStart fires when a Phase 5 proving-pool worker goroutine
	// starts.
	WorkerStart Point = "worker-start"
	// Lift fires as the CFG builder consumes each instruction's
	// lifted RTL (Phase 1).
	Lift Point = "lift"
)

// Points lists every injection site, for sweep-style tests.
var Points = []Point{SolverStep, CacheLookup, WorkerStart, Lift}

// Kind is what an armed fault does when it fires.
type Kind int

const (
	// Panic raises a runtime panic at the point — the containment
	// boundaries must convert it into a structured error.
	Panic Kind = iota
	// Delay sleeps at the point — deadlines and watchdogs must still
	// bound the check's wall clock.
	Delay
	// Cancel invokes the fault's Cancel func (typically a
	// context.CancelFunc) — the check must unwind promptly.
	Cancel
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Cancel:
		return "cancel"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists every fault kind, for sweep-style tests.
var Kinds = []Kind{Panic, Delay, Cancel}

// InjectedPanic is the value a Panic fault panics with, so containment
// tests can tell an injected panic from a genuine checker bug.
type InjectedPanic struct {
	Point Point
	Hit   int64
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (hit %d)", p.Point, p.Hit)
}

// Fault arms one injection: at Point, on the After-th hit (1-based),
// do Kind. A Repeat fault keeps firing on every hit from After on —
// useful for Delay faults that must stretch a whole query.
type Fault struct {
	Point  Point
	Kind   Kind
	After  int64         // fire on this hit (1-based); <=1 means the first
	Repeat bool          // keep firing on every later hit too
	Sleep  time.Duration // Delay kind: how long to sleep per firing
	Cancel func()        // Cancel kind: invoked once when the fault fires
}

// armed is one fault plus its live hit counter.
type armed struct {
	Fault
	hits      atomic.Int64
	cancelled atomic.Bool
}

// Plan is a set of armed faults, at most one per point.
type Plan struct {
	byPoint map[Point]*armed
}

// NewPlan arms the given faults into a plan (not yet activated).
func NewPlan(fs ...Fault) *Plan {
	p := &Plan{byPoint: make(map[Point]*armed, len(fs))}
	for _, f := range fs {
		if f.After < 1 {
			f.After = 1
		}
		p.byPoint[f.Point] = &armed{Fault: f}
	}
	return p
}

// PlanFromSeed derives a single deterministic fault from an integer
// seed: the point, kind, and hit count are a pure function of the seed,
// so a sweep over seeds covers the (point, kind, after) space and any
// failure replays from its seed. Cancel faults invoke cancel (which may
// be nil for a no-op).
func PlanFromSeed(seed int64, cancel func()) (*Plan, Fault) {
	r := rand.New(rand.NewSource(seed))
	f := Fault{
		Point: Points[r.Intn(len(Points))],
		Kind:  Kinds[r.Intn(len(Kinds))],
		After: 1 + r.Int63n(50),
	}
	switch f.Kind {
	case Delay:
		f.Sleep = time.Duration(1+r.Intn(3)) * time.Millisecond
		f.Repeat = r.Intn(2) == 0
	case Cancel:
		f.Cancel = cancel
	}
	return NewPlan(f), f
}

// active is the process-global armed plan; nil means injection is off.
var active atomic.Pointer[Plan]

// Activate installs the plan and returns a restore func that disarms
// it. Tests should defer the restore immediately.
func Activate(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Active reports whether a plan is currently armed.
func Active() bool { return active.Load() != nil }

// Fire triggers the armed fault at point p, if any. The no-plan fast
// path is one atomic load.
func Fire(p Point) {
	plan := active.Load()
	if plan == nil {
		return
	}
	a := plan.byPoint[p]
	if a == nil {
		return
	}
	hit := a.hits.Add(1)
	if hit < a.After || (hit > a.After && !a.Repeat) {
		return
	}
	switch a.Kind {
	case Panic:
		panic(InjectedPanic{Point: p, Hit: hit})
	case Delay:
		time.Sleep(a.Sleep)
	case Cancel:
		if a.Cancel != nil && a.cancelled.CompareAndSwap(false, true) {
			a.Cancel()
		}
	}
}
