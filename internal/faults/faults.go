// Package faults is the checker's deterministic fault-injection
// harness. The pipeline's robustness-critical boundaries — the solver's
// step loop, the formula-cache lookup, the proving pool's worker start,
// and the CFG builder's per-instruction RTL walk — each call Fire at a named Point; a test
// arms a Plan describing which points misbehave and how (panic, delay,
// forced cancellation), drives a real check, and asserts the checker
// still terminates with a well-formed Result or structured error.
//
// The verdict store's filesystem boundary (internal/vfs) adds four I/O
// points — store-read, store-write, store-sync, store-rename — and the
// Err kind, which makes the operation fail with an injected error
// (EIO-style by default, ENOSPC via Fault.Err) or tear a write short at
// an exact byte boundary (Fault.Torn). These fire through FireErr and
// FireWrite, so a chaos test can fill the disk, tear a record at every
// byte, or kill the process mid-commit (a Cancel fault whose func
// os.Exits), deterministically.
//
// Injection is deterministic and seed-addressable: a Fault fires on an
// exact hit count (After) at an exact point, so a failing combination
// replays from its (point, kind, after) triple alone, and PlanFromSeed
// derives such triples from a single integer for sweep-style tests.
//
// When no plan is armed — the production state — Fire costs one atomic
// pointer load and a nil compare. Arming is process-global: tests that
// inject faults must not run in parallel with tests that expect a clean
// checker (the Go test runner's default sequential execution within a
// package satisfies this).
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"syscall"
	"time"
)

// Point names one injection site in the pipeline.
type Point string

const (
	// SolverStep fires on every unit of prover work (the same tick the
	// step budget counts): eliminations, residue-enumeration leaves,
	// quantifier-elimination nodes.
	SolverStep Point = "solver-step"
	// CacheLookup fires on every shared formula-cache lookup.
	CacheLookup Point = "cache-lookup"
	// WorkerStart fires when a Phase 5 proving-pool worker goroutine
	// starts.
	WorkerStart Point = "worker-start"
	// Lift fires as the CFG builder consumes each instruction's
	// lifted RTL (Phase 1).
	Lift Point = "lift"

	// StoreRead fires before every verdict-store record read.
	StoreRead Point = "store-read"
	// StoreWrite fires on every verdict-store temp-file write (the
	// only point where Fault.Torn tears the write short).
	StoreWrite Point = "store-write"
	// StoreSync fires before every verdict-store fsync (record file
	// and parent directory alike).
	StoreSync Point = "store-sync"
	// StoreRename fires before the rename that commits a record.
	StoreRename Point = "store-rename"
)

// Points lists the checker-pipeline injection sites, for sweep-style
// tests that drive plain checks (which never touch the store).
var Points = []Point{SolverStep, CacheLookup, WorkerStart, Lift}

// StorePoints lists the verdict store's filesystem injection sites.
var StorePoints = []Point{StoreRead, StoreWrite, StoreSync, StoreRename}

// AllPoints is every injection site in the process.
var AllPoints = append(append([]Point{}, Points...), StorePoints...)

// Kind is what an armed fault does when it fires.
type Kind int

const (
	// Panic raises a runtime panic at the point — the containment
	// boundaries must convert it into a structured error.
	Panic Kind = iota
	// Delay sleeps at the point — deadlines and watchdogs must still
	// bound the check's wall clock.
	Delay
	// Cancel invokes the fault's Cancel func (typically a
	// context.CancelFunc) — the check must unwind promptly.
	Cancel
	// Err makes an I/O operation fail with the fault's Err (ErrIO if
	// unset), optionally tearing a write short at Torn bytes first.
	// Only the FireErr/FireWrite points (the store's I/O seam) can
	// surface it; at a plain Fire point an Err fault is a no-op.
	Err
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Cancel:
		return "cancel"
	case Err:
		return "err"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists every fault kind, for sweep-style tests.
var Kinds = []Kind{Panic, Delay, Cancel, Err}

// ErrIO is the default injected I/O failure: a generic medium error,
// the shape a dying disk produces.
var ErrIO = errors.New("faults: injected I/O error")

// ErrNoSpace is an injected disk-full failure. It wraps
// syscall.ENOSPC, so errors.Is(err, syscall.ENOSPC) holds — exactly
// what a full filesystem returns.
var ErrNoSpace = fmt.Errorf("faults: injected disk full: %w", syscall.ENOSPC)

// InjectedPanic is the value a Panic fault panics with, so containment
// tests can tell an injected panic from a genuine checker bug.
type InjectedPanic struct {
	Point Point
	Hit   int64
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (hit %d)", p.Point, p.Hit)
}

// Fault arms one injection: at Point, on the After-th hit (1-based),
// do Kind. A Repeat fault keeps firing on every hit from After on —
// useful for Delay faults that must stretch a whole query.
type Fault struct {
	Point  Point
	Kind   Kind
	After  int64         // fire on this hit (1-based); <=1 means the first
	Repeat bool          // keep firing on every later hit too
	Sleep  time.Duration // Delay kind: how long to sleep per firing
	Cancel func()        // Cancel kind: invoked once when the fault fires
	Err    error         // Err kind: the returned error (nil = ErrIO)
	// Torn applies to Err faults at a FireWrite point: the write
	// succeeds for exactly Torn bytes (clamped to [0, len]) before the
	// error surfaces, leaving a torn record on disk. The zero default
	// fails the write with nothing written.
	Torn int
}

// armed is one fault plus its live hit counter.
type armed struct {
	Fault
	hits      atomic.Int64
	cancelled atomic.Bool
}

// Plan is a set of armed faults, at most one per point.
type Plan struct {
	byPoint map[Point]*armed
}

// NewPlan arms the given faults into a plan (not yet activated).
func NewPlan(fs ...Fault) *Plan {
	p := &Plan{byPoint: make(map[Point]*armed, len(fs))}
	for _, f := range fs {
		if f.After < 1 {
			f.After = 1
		}
		p.byPoint[f.Point] = &armed{Fault: f}
	}
	return p
}

// PlanFromSeed derives a single deterministic fault from an integer
// seed: the point, kind, and hit count are a pure function of the seed,
// so a sweep over seeds covers the (point, kind, after) space and any
// failure replays from its seed. Cancel faults invoke cancel (which may
// be nil for a no-op). The point is drawn from the checker-pipeline
// Points; store sweeps use PlanFromSeedOver with StorePoints.
func PlanFromSeed(seed int64, cancel func()) (*Plan, Fault) {
	return PlanFromSeedOver(seed, Points, cancel)
}

// PlanFromSeedOver is PlanFromSeed over an explicit point set, so a
// sweep can target one subsystem (e.g. the store's I/O points) while
// staying seed-replayable.
func PlanFromSeedOver(seed int64, points []Point, cancel func()) (*Plan, Fault) {
	r := rand.New(rand.NewSource(seed))
	f := Fault{
		Point: points[r.Intn(len(points))],
		Kind:  Kinds[r.Intn(len(Kinds))],
		After: 1 + r.Int63n(50),
	}
	switch f.Kind {
	case Delay:
		f.Sleep = time.Duration(1+r.Intn(3)) * time.Millisecond
		f.Repeat = r.Intn(2) == 0
	case Cancel:
		f.Cancel = cancel
	case Err:
		if r.Intn(2) == 0 {
			f.Err = ErrNoSpace
		}
		f.Torn = r.Intn(64)
	}
	return NewPlan(f), f
}

// active is the process-global armed plan; nil means injection is off.
var active atomic.Pointer[Plan]

// Activate installs the plan and returns a restore func that disarms
// it. Tests should defer the restore immediately.
func Activate(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Active reports whether a plan is currently armed.
func Active() bool { return active.Load() != nil }

// firing returns the armed fault at p and its hit number when the
// fault fires on this hit, or nil. The no-plan fast path is one atomic
// load.
func firing(p Point) (*armed, int64) {
	plan := active.Load()
	if plan == nil {
		return nil, 0
	}
	a := plan.byPoint[p]
	if a == nil {
		return nil, 0
	}
	hit := a.hits.Add(1)
	if hit < a.After || (hit > a.After && !a.Repeat) {
		return nil, 0
	}
	return a, hit
}

// act performs the fault's non-error behavior (panic, delay, cancel);
// Err faults are surfaced only by FireErr/FireWrite.
func (a *armed) act(p Point, hit int64) {
	switch a.Kind {
	case Panic:
		panic(InjectedPanic{Point: p, Hit: hit})
	case Delay:
		time.Sleep(a.Sleep)
	case Cancel:
		if a.Cancel != nil && a.cancelled.CompareAndSwap(false, true) {
			a.Cancel()
		}
	}
}

// Fire triggers the armed fault at point p, if any. An Err fault is a
// no-op here — plain pipeline points have no error to return.
func Fire(p Point) {
	if a, hit := firing(p); a != nil {
		a.act(p, hit)
	}
}

// FireErr triggers the armed fault at an I/O point: Err faults return
// their injected error (ErrIO if unset); every other kind behaves as at
// a plain Fire point and returns nil.
func FireErr(p Point) error {
	a, hit := firing(p)
	if a == nil {
		return nil
	}
	if a.Kind == Err {
		if a.Err != nil {
			return a.Err
		}
		return ErrIO
	}
	a.act(p, hit)
	return nil
}

// FireWrite triggers the armed fault at a write point for a buffer of n
// bytes. It returns how many bytes the write may persist and the error
// to surface: (n, nil) when no Err fault fires, (min(Torn, n), err)
// when one does — the torn-write shape a crash mid-write leaves behind.
func FireWrite(p Point, n int) (int, error) {
	a, hit := firing(p)
	if a == nil {
		return n, nil
	}
	if a.Kind != Err {
		a.act(p, hit)
		return n, nil
	}
	allow := a.Torn
	if allow < 0 {
		allow = 0
	}
	if allow > n {
		allow = n
	}
	err := a.Err
	if err == nil {
		err = ErrIO
	}
	return allow, err
}
