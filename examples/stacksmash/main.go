// Stack smashing: the Section 6 detection scenario. A parser copies
// attacker-controlled input into a fixed-size stack buffer. The unsafe
// version bounds the copy only by the input length — the classic gets()
// overflow of Smith's stack-smashing examples — and the checker flags
// every out-of-bounds store. The safe version also bounds the copy by
// the buffer size.
//
// Run with: go run ./examples/stacksmash
package main

import (
	"context"
	"fmt"
	"log"

	"mcsafe"
)

const hostSpec = `
region V
loc w int state init region V summary
val src int[m] state {w} region V
sym m
constraint m >= 1
invoke %o0 = src
invoke %o1 = m
allow V int ro
allow V int[m] rfo
frame parse size 160
  slot fp-96 int[16] name buf state init
end
`

// The overflow: "while (i < m) buf[i] = src[i];" with no check against
// the 16-word buffer.
const unsafeParser = `
parse:
	save %sp,-160,%sp
	mov %i0,%l0
	mov %i1,%l1
	add %fp,-96,%l2    ! buf
	clr %l4
copy:
	cmp %l4,%l1
	bge done           ! bounded by the INPUT length only
	nop
	sll %l4,2,%l5
	ld [%l0+%l5],%l6
	st %l6,[%l2+%l5]   ! buf[i] — smashes the frame when i >= 16
	ba copy
	add %l4,1,%l4
done:
	ret
	restore
`

// The fix: also stop at the buffer size.
const safeParser = `
parse:
	save %sp,-160,%sp
	mov %i0,%l0
	mov %i1,%l1
	add %fp,-96,%l2
	clr %l4
copy:
	cmp %l4,%l1
	bge done
	nop
	cmp %l4,16
	bge done           ! ... AND by the buffer size
	nop
	sll %l4,2,%l5
	ld [%l0+%l5],%l6
	st %l6,[%l2+%l5]
	ba copy
	add %l4,1,%l4
done:
	ret
	restore
`

func check(name, asm string) {
	spec, err := mcsafe.ParseSpec(hostSpec)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := mcsafe.Assemble(asm, spec, "parse")
	if err != nil {
		log.Fatal(err)
	}
	res, err := mcsafe.New().Check(context.Background(), prog, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s ==\n", name)
	if res.Safe {
		fmt.Println("verdict: safe")
	} else {
		fmt.Println("verdict: UNSAFE")
		for _, v := range res.Violations {
			fmt.Println("  ", v)
		}
	}
	fmt.Println()
}

func main() {
	check("unchecked copy (gets-style overflow)", unsafeParser)
	check("length-checked copy", safeParser)
}
