// Thread list: the worked policy example of Section 2 of the paper. The
// host stores its threads in a linked list of
//
//	struct thread { int tid; int lwpid; struct thread *next; };
//
// and loads an untrusted extension that must find the lightweight
// process (lwpid) on which a given thread (tid) runs. The policy
//
//	[H : thread.tid, thread.lwpid : ro]
//	[H : thread.next : rfo]
//
// lets the extension read and examine tid and lwpid and follow only
// next. The example then shows the policy doing its job: a variant that
// tries to WRITE a tid, and a variant that tries to FOLLOW tid as if it
// were a pointer, are both rejected.
//
// Run with: go run ./examples/threadlist
package main

import (
	"context"
	"fmt"
	"log"

	"mcsafe"
)

const hostSpec = `
struct thread { tid int ; lwpid int ; next ptr<thread> }
region H
loc t thread region H summary fields(tid=init, lwpid=init, next={t,null})
val threads ptr<thread> state {t,null} region H
sym wanted
invoke %o0 = threads
invoke %o1 = wanted
allow H thread.tid ro
allow H thread.lwpid ro
allow H thread.next rfo
allow H ptr<thread> rfo
`

// The intended extension: walk the list, return lwpid of the thread
// whose tid matches.
const finder = `
find:
	mov %o0,%g1
loop:
	cmp %g1,%g0
	be miss
	nop
	ld [%g1+0],%g2     ! t->tid (readable)
	cmp %g2,%o1
	be hit
	nop
	ba loop
	ld [%g1+8],%g1     ! t->next (followable)
hit:
	ld [%g1+4],%o0     ! t->lwpid (readable)
	retl
	nop
miss:
	mov -1,%o0
	retl
	nop
`

// A malicious variant: tries to overwrite tid (the policy grants no w).
const scribbler = `
find:
	mov %o0,%g1
	cmp %g1,%g0
	be out
	nop
	st %o1,[%g1+0]     ! write t->tid: NOT writable under the policy
out:
	retl
	nop
`

// Another malicious variant: treats tid as a pointer and dereferences it
// (tid has no f permission, and is not even a pointer type).
const chaser = `
find:
	mov %o0,%g1
	cmp %g1,%g0
	be out
	nop
	ld [%g1+0],%g2     ! t->tid
	ld [%g2+0],%o0     ! *(t->tid): tid is not followable
out:
	retl
	nop
`

func check(name, asm string) {
	spec, err := mcsafe.ParseSpec(hostSpec)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := mcsafe.Assemble(asm, spec, "find")
	if err != nil {
		log.Fatal(err)
	}
	res, err := mcsafe.New().Check(context.Background(), prog, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s ==\n", name)
	if res.Safe {
		fmt.Println("verdict: safe")
	} else {
		fmt.Println("verdict: UNSAFE")
		for _, v := range res.Violations {
			fmt.Println("  ", v)
		}
	}
	fmt.Println()
}

func main() {
	check("lwpid finder (obeys the policy)", finder)
	check("tid scribbler (writes read-only host data)", scribbler)
	check("tid chaser (follows a non-followable value)", chaser)
}
