// Quickstart: check the paper's running example (Figure 1) — untrusted
// SPARC machine code that sums a host integer array — against the host's
// typestate specification and safety policy, then walk through what the
// checker computed: the Figure 6 typestates, the Figure 3 safety
// conditions, and the final verdict.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mcsafe"
)

// The untrusted code of Figure 1: sum the elements of an integer array
// whose base address arrives in %o0 and length in %o1.
const untrusted = `
1:  mov %o0,%o2      ! move %o0 into %o2
2:  clr %o0          ! set %o0 to zero
3:  cmp %o0,%o1      ! compare %o0 and %o1
4:  bge 12           ! branch to 12 if %o0 >= %o1
5:  clr %g3          ! set %g3 to zero
6:  sll %g3,2,%g2    ! %g2 = 4 x %g3
7:  ld [%o2+%g2],%g2 ! load from address %o2+%g2
8:  inc %g3          ! %g3 = %g3 + 1
9:  cmp %g3,%o1      ! compare %g3 and %o1
10: bl 6             ! branch to 6 if %g3 < %o1
11: add %o0,%g2,%o0  ! %o0 = %o0 + %g2
12: retl
13: nop
`

// The host side of Figure 1: arr is an integer array of size n (n >= 1);
// e is the abstract location summarizing all its elements; the V region
// grants read/operate on integers and read/follow/operate on the array
// base pointer.
const hostSpec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

func main() {
	spec, err := mcsafe.ParseSpec(hostSpec)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := mcsafe.Assemble(untrusted, spec, "")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== decoded machine code (the checker's real input) ==")
	fmt.Print(prog.Disassemble())

	res, err := mcsafe.New().Check(context.Background(), prog, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== typestate propagation (Figure 6) ==")
	fmt.Print(res.DumpTypestate())

	fmt.Println("\n== global safety conditions (Figure 3) and verdicts ==")
	fmt.Print(res.Conditions())

	fmt.Printf("\nstatistics: %d instructions, %d branches, %d loop(s), %d global conditions\n",
		res.Stats.Instructions, res.Stats.Branches, res.Stats.Loops, res.Stats.GlobalConds)
	fmt.Printf("phase times: typestate=%v annot+local=%v global=%v total=%v\n",
		res.Times.Typestate, res.Times.AnnotLocal, res.Times.Global, res.Times.Total)

	if res.Safe {
		fmt.Println("\nVERDICT: safe — the loop invariant on g3/o1 (g3 < n and o1 = n) was")
		fmt.Println("synthesized automatically by induction iteration (Section 5.2.2).")
	} else {
		fmt.Println("\nVERDICT: UNSAFE")
		for _, v := range res.Violations {
			fmt.Println(" ", v)
		}
	}
}
