// Paging policy: the kernel-extension scenario of Section 6. A host OS
// loads an untrusted page-replacement policy that walks the kernel's
// list of page frames. The buggy version dereferences a possibly-null
// frame pointer — the exact violation the paper's checker found — and
// the fixed version guards every dereference with a null test, which the
// verifier discharges path-sensitively.
//
// Run with: go run ./examples/pagingpolicy
package main

import (
	"context"
	"fmt"
	"log"

	"mcsafe"
)

const hostSpec = `
# The kernel's frame list: pfn and refbit are readable, next may be
# followed; the head pointer itself may be null (empty list).
struct frame { pfn int ; refbit int ; next ptr<frame> }
region H
loc fr frame region H summary fields(pfn=init, refbit=init, next={fr,null})
val head ptr<frame> state {fr,null} region H
invoke %o0 = head
allow H frame.pfn ro
allow H frame.refbit ro
allow H frame.next rfo
allow H ptr<frame> rfo
`

// The buggy policy: dereferences cur before checking it for null.
const buggy = `
policy:
	mov %o0,%o1        ! cur = head
scan:
	ld [%o1+4],%o2     ! cur->refbit   <- cur could be NULL here
	cmp %o2,%g0
	be found
	nop
	ld [%o1+8],%o1     ! cur = cur->next
	cmp %o1,%g0
	bne scan
	nop
	mov -1,%o0
	retl
	nop
found:
	ld [%o1+0],%o0     ! victim pfn
	retl
	nop
`

// The fixed policy: every dereference dominated by a null test.
const fixed = `
policy:
	mov %o0,%o1        ! cur = head
scan:
	cmp %o1,%g0
	be miss            ! null check BEFORE the dereference
	nop
	ld [%o1+4],%o2     ! cur->refbit
	cmp %o2,%g0
	be found
	nop
	ba scan
	ld [%o1+8],%o1     ! cur = cur->next (delay slot)
found:
	ld [%o1+0],%o0     ! victim pfn (still guarded: cur != null here)
	retl
	nop
miss:
	mov -1,%o0
	retl
	nop
`

func check(name, asm string) {
	spec, err := mcsafe.ParseSpec(hostSpec)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := mcsafe.Assemble(asm, spec, "policy")
	if err != nil {
		log.Fatal(err)
	}
	res, err := mcsafe.New().Check(context.Background(), prog, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s ==\n", name)
	if res.Safe {
		fmt.Println("verdict: safe — all dereferences proved non-null")
	} else {
		fmt.Println("verdict: UNSAFE")
		for _, v := range res.Violations {
			fmt.Println("  ", v)
		}
	}
	fmt.Println()
}

func main() {
	check("buggy policy (the Section 6 finding)", buggy)
	check("fixed policy (null tests dominate every dereference)", fixed)
}
