package mcsafe

import (
	"context"
	"strings"
	"testing"

	"mcsafe/internal/progs"
)

const fig1Asm = `
1:  mov %o0,%o2
2:  clr %o0
3:  cmp %o0,%o1
4:  bge 12
5:  clr %g3
6:  sll %g3,2,%g2
7:  ld [%o2+%g2],%g2
8:  inc %g3
9:  cmp %g3,%o1
10: bl 6
11: add %o0,%g2,%o0
12: retl
13: nop
`

const fig1Spec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

func TestPublicAPIQuickstart(t *testing.T) {
	spec, err := ParseSpec(fig1Spec)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(fig1Asm, spec, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Check(context.Background(), prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe {
		t.Fatalf("Figure 1 should be safe: %+v", res.Violations)
	}
	if res.Stats.GlobalConds != 4 {
		t.Errorf("global conditions = %d, want 4", res.Stats.GlobalConds)
	}
	if ts := res.DumpTypestate(); !strings.Contains(ts, "int32[n]") {
		t.Errorf("typestate dump missing the array pointer:\n%s", ts)
	}
	if cs := res.Conditions(); !strings.Contains(cs, "proved") {
		t.Errorf("conditions dump: %q", cs)
	}
}

// TestBinaryFirst checks machine words directly: the Words of an
// assembled program round-trip through FromWords (as a loader would
// supply them) and the checker reaches the same verdict.
func TestBinaryFirst(t *testing.T) {
	spec, err := ParseSpec(fig1Spec)
	if err != nil {
		t.Fatal(err)
	}
	assembled, err := Assemble(fig1Asm, spec, "")
	if err != nil {
		t.Fatal(err)
	}
	words := assembled.Words()
	if len(words) != 13 {
		t.Fatalf("words = %d", len(words))
	}
	prog, err := FromWords(words, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Check(context.Background(), prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe {
		t.Fatalf("binary-first check should be safe: %+v", res.Violations)
	}
}

// TestBinaryTamperingDetected flips the loop branch of the Figure 1
// binary from bl (signed less) to ble, introducing an off-by-one read of
// arr[n]; checking the tampered words must fail.
func TestBinaryTamperingDetected(t *testing.T) {
	spec, _ := ParseSpec(fig1Spec)
	assembled, _ := Assemble(fig1Asm, spec, "")
	words := append([]uint32(nil), assembled.Words()...)
	// Word 9 is "bl 6" (cond 3); rewrite the cond field to ble (2).
	if (words[9]>>25)&0xf != 3 {
		t.Fatalf("word 9 is not bl: %08x", words[9])
	}
	words[9] = words[9]&^(0xf<<25) | (2 << 25)
	prog, err := FromWords(words, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Check(context.Background(), prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("tampered binary (bl -> ble) must be rejected")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Desc, "upper bound") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an upper-bound violation: %+v", res.Violations)
	}
}

func TestCheckNilArguments(t *testing.T) {
	// The deprecated package-level shim stays covered here; it must
	// behave exactly like New().Check.
	if _, err := Check(nil, nil); err == nil {
		t.Fatal("nil arguments should error")
	}
	if _, err := New().Check(context.Background(), nil, nil); err == nil {
		t.Fatal("nil arguments should error via Checker too")
	}
}

func TestParseSpecErrors(t *testing.T) {
	if _, err := ParseSpec("region V\nloc x nosuch"); err == nil {
		t.Fatal("bad spec should error")
	}
}

func TestAssembleErrors(t *testing.T) {
	spec, _ := ParseSpec(fig1Spec)
	if _, err := Assemble("frobnicate", spec, ""); err != nil {
		return
	}
	t.Fatal("bad assembly should error")
}

func TestOptionsAblation(t *testing.T) {
	// Without generalization the Figure 1 loop invariant cannot be
	// synthesized (Section 5.2.2 requires it), so the checker rejects.
	spec, _ := ParseSpec(fig1Spec)
	prog, _ := Assemble(fig1Asm, spec, "")
	res, err := CheckWithOptions(prog, spec, Options{DisableGeneralization: true, DisableDNF: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("Figure 1 should not verify without generalization")
	}
}

// TestBuiltinsConsistent cross-checks the public API against the
// built-in Figure 9 corpus for two representative programs.
func TestBuiltinsConsistent(t *testing.T) {
	for _, name := range []string{"Sum", "PagingPolicy"} {
		b := progs.Get(name)
		spec, err := ParseSpec(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Assemble(b.Source, spec, b.Entry)
		if err != nil {
			t.Fatal(err)
		}
		res, err := New().Check(context.Background(), prog, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Safe != b.WantSafe {
			t.Errorf("%s: Safe = %v, want %v", name, res.Safe, b.WantSafe)
		}
	}
}
