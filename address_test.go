package mcsafe

import (
	"strings"
	"testing"
)

// goldenSpecText and goldenAsmText are frozen inputs whose content
// addresses are pinned below. If either pinned value changes, the
// canonical encoding changed: every persisted verdict-store record is
// silently invalidated, which is allowed only together with a version
// bump of the respective encoding magic (see internal/isa/fingerprint.go
// and internal/policy/hash.go).
const goldenSpecText = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

const goldenAsmText = `
1:  mov %o0,%o2
2:  clr %o0
3:  retl
4:  nop
`

const (
	// Program encoding v3 (architecture-qualified; see
	// internal/isa/fingerprint.go).
	goldenProgFingerprint  = "87acacf399d2fb0c0f1401f175fb8ba56558d2534a082359c6193b7fb98de8c5"
	goldenSpecHash         = "194eceb549b7f1aedb0af4ef92b4d6773a4df524fbf799331bcb521b471b7c9b"
	goldenWordsFingerprint = "b7546f7304c2c1256c34ee40ed126e398085cef9c01891efb9bf1581a8861630"
)

func buildGolden(t *testing.T) (*Program, *Spec) {
	t.Helper()
	spec, err := ParseSpec(goldenSpecText)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(goldenAsmText, spec, "")
	if err != nil {
		t.Fatal(err)
	}
	return prog, spec
}

// TestContentAddressStability pins the content addresses across
// versions: the golden values must never drift without an explicit
// encoding-version bump.
func TestContentAddressStability(t *testing.T) {
	prog, spec := buildGolden(t)
	if got := prog.Fingerprint().String(); got != goldenProgFingerprint {
		t.Errorf("program fingerprint drifted:\n got  %s\n want %s", got, goldenProgFingerprint)
	}
	if got := spec.Hash().String(); got != goldenSpecHash {
		t.Errorf("spec hash drifted:\n got  %s\n want %s", got, goldenSpecHash)
	}
	w, err := FromWords([]uint32{0x01000000, 0x81c3e008}, 0x10000, map[string]int{"entry": 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Fingerprint().String(); got != goldenWordsFingerprint {
		t.Errorf("FromWords fingerprint drifted:\n got  %s\n want %s", got, goldenWordsFingerprint)
	}
}

// TestSpecHashCanonical: the hash addresses the parsed structure, not
// the source text — comments and whitespace do not perturb it, while a
// semantic change does.
func TestSpecHashCanonical(t *testing.T) {
	_, spec := buildGolden(t)
	reformatted := "# a leading comment\n" +
		strings.ReplaceAll(goldenSpecText, "loc e  int ", "loc e int") +
		"\n# a trailing comment\n"
	spec2, err := ParseSpec(reformatted)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Hash() != spec2.Hash() {
		t.Error("reformatting the policy source changed its hash")
	}
	spec3, err := ParseSpec(strings.ReplaceAll(goldenSpecText, "n >= 1", "n >= 2"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Hash() == spec3.Hash() {
		t.Error("changing a constraint did not change the spec hash")
	}
}

// TestFingerprintSensitivity: any checker-visible program difference —
// a word, the entry point, a symbol — yields a different address.
func TestFingerprintSensitivity(t *testing.T) {
	fp := func(words []uint32, syms map[string]int) Hash {
		p, err := FromWords(words, 0x10000, syms, nil)
		if err != nil {
			t.Fatal(err)
		}
		return p.Fingerprint()
	}
	words := []uint32{0x01000000, 0x01000000, 0x81c3e008}
	h0 := fp(words, nil)
	if h0 != fp(words, nil) {
		t.Error("fingerprint is not deterministic")
	}
	if h0 == fp([]uint32{0x01000000, 0x81c3e008, 0x01000000}, nil) {
		t.Error("reordered words share a fingerprint")
	}
	if h0 == fp(words, map[string]int{"l": 1}) {
		t.Error("adding a symbol did not change the fingerprint")
	}
}

// TestFingerprintSymbolFraming pins the fix for a real collision in the
// v1 program encoding, which framed each symbol-table entry as
// name||0x00||value. Names may contain NUL bytes, so an adversarial
// name could absorb a neighboring entry's framing: the two distinct
// symbol tables below produce byte-identical v1 encodings
// (count=2, then 61 00 00000001 62 00 00000002 63 00 00000003), which
// would let a cached verdict for one program answer for the other. The
// v2 encoding length-prefixes every name, making the framing
// unambiguous.
func TestFingerprintSymbolFraming(t *testing.T) {
	words := []uint32{0x01000000, 0x01000000, 0x01000000, 0x81c3e008}
	a, err := FromWords(words, 0x10000, map[string]int{"a\x00\x00\x00\x00\x01b": 2, "c": 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromWords(words, 0x10000, map[string]int{"a": 1, "b\x00\x00\x00\x00\x02c": 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct symbol tables with NUL-bearing names share a fingerprint")
	}
}

func TestParseHash(t *testing.T) {
	_, spec := buildGolden(t)
	h := spec.Hash()
	back, err := ParseHash(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Error("ParseHash(String) round trip failed")
	}
	if h.IsZero() {
		t.Error("non-trivial spec hashed to zero")
	}
	if _, err := ParseHash("abc"); err == nil {
		t.Error("short hash accepted")
	}
	if _, err := ParseHash(strings.Repeat("zz", 32)); err == nil {
		t.Error("non-hex hash accepted")
	}
	var zero Hash
	if !zero.IsZero() {
		t.Error("zero hash not IsZero")
	}
}
