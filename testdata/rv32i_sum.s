sum:
  mv a2, a0
  li a0, 0
  li a3, 0
loop:
  bge a3, a1, done
  slli a4, a3, 2
  add a4, a2, a4
  lw a5, 0(a4)
  add a0, a0, a5
  addi a3, a3, 1
  j loop
done:
  ret
