package mcsafe

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// goldenWire is a fixed, fully-populated wire result: stable values only
// (no clocks), so its canonical encoding is a byte-exact golden.
func goldenWire() WireResult {
	return NewWireResult(
		"sparc",
		false,
		[]Violation{{
			Node: 7, Index: 6, Line: 12, Phase: "global",
			Code: CodeOOB, Desc: "array store out of bounds", Cond: 3, Span: 42,
		}},
		Stats{
			Instructions: 13, Branches: 2, Loops: 1, InnerLoops: 0,
			Calls: 0, TrustedCalls: 0, GlobalConds: 4,
			PropagationSteps: 120, ProverQueries: 9, InductionRuns: 1,
		},
		PhaseTimes{
			Typestate:  1500 * time.Microsecond,
			AnnotLocal: 800 * time.Microsecond,
			Global:     21 * time.Millisecond,
			Total:      24 * time.Millisecond,
		},
	)
}

// TestWireGolden pins the canonical v1 encoding byte-for-byte
// (regenerate with MCSAFE_REGEN=1). A drift here silently invalidates
// every persisted verdict-store record and breaks the bit-identity
// contract between `mcsafe -json`, the store, and mcsafed responses, so
// it must coincide with a SchemaVersion or CheckerVersion change.
func TestWireGolden(t *testing.T) {
	got, err := goldenWire().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "wire_v1.golden")
	if os.Getenv("MCSAFE_REGEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with MCSAFE_REGEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire encoding diverged from %s (regenerate with MCSAFE_REGEN=1 if intended)\ngot:  %s\nwant: %s",
			path, got, want)
	}
}

// TestWireRoundTrip: Marshal → UnmarshalWire → Marshal is the identity
// on bytes, spans are normalized off the wire, and a nil violation list
// encodes as [].
func TestWireRoundTrip(t *testing.T) {
	w := goldenWire()
	if w.Violations[0].Span != 0 {
		t.Error("NewWireResult kept a trace-local span ID")
	}
	enc1, err := w.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalWire(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("re-encoding is not the identity:\n%s\n%s", enc1, enc2)
	}

	safe := NewWireResult("sparc", true, nil, Stats{}, PhaseTimes{})
	enc, err := safe.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(enc, []byte(`"violations":[]`)) {
		t.Errorf("nil violations did not encode as []: %s", enc)
	}
}

// TestWireUnknownFieldTolerance: a v1 decoder reads records written by
// any later additive schema, ignoring fields it does not know; documents
// without a schema version are rejected.
func TestWireUnknownFieldTolerance(t *testing.T) {
	future := `{"schema":1,"checker":"mcsafe-99","safe":true,` +
		`"violations":[],"stats":{"instructions":1,"future_counter":7},` +
		`"times":{"total_ns":5},"future_field":{"nested":true}}`
	w, err := UnmarshalWire([]byte(future))
	if err != nil {
		t.Fatalf("future record rejected: %v", err)
	}
	if !w.Safe || w.Checker != "mcsafe-99" || w.Stats.Instructions != 1 {
		t.Errorf("future record misdecoded: %+v", w)
	}
	if _, err := UnmarshalWire([]byte(`{"safe":true}`)); err == nil {
		t.Error("unversioned document accepted")
	}
	if _, err := UnmarshalWire([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestWireFromCheck: the wire form of a real check round-trips and the
// lifted Result preserves the verdict surface.
func TestWireFromCheck(t *testing.T) {
	prog, spec := buildGolden(t)
	res, err := New().Check(context.Background(), prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := res.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	w, err := UnmarshalWire(enc)
	if err != nil {
		t.Fatal(err)
	}
	if w.Schema != SchemaVersion || w.Checker != CheckerVersion {
		t.Errorf("wire header = (%d, %q), want (%d, %q)", w.Schema, w.Checker, SchemaVersion, CheckerVersion)
	}
	lifted := w.Result()
	if lifted.Safe != res.Safe || len(lifted.Violations) != len(res.Violations) {
		t.Errorf("lifted result diverged: safe=%v/%v violations=%d/%d",
			lifted.Safe, res.Safe, len(lifted.Violations), len(res.Violations))
	}
	var generic map[string]any
	if err := json.Unmarshal(enc, &generic); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "checker", "safe", "violations", "stats", "times"} {
		if _, ok := generic[key]; !ok {
			t.Errorf("wire encoding missing stable key %q", key)
		}
	}
}
