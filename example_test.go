package mcsafe_test

import (
	"context"
	"fmt"

	"mcsafe"
)

const exampleAsm = `
1:  mov %o0,%o2
2:  clr %o0
3:  cmp %o0,%o1
4:  bge 12
5:  clr %g3
6:  sll %g3,2,%g2
7:  ld [%o2+%g2],%g2
8:  inc %g3
9:  cmp %g3,%o1
10: bl 6
11: add %o0,%g2,%o0
12: retl
13: nop
`

const exampleSpec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

// ExampleChecker_Check verifies the paper's Figure 1 array-summation
// loop with an observed, sequential Checker and reads the effort
// counters off the trace.
func ExampleChecker_Check() {
	spec, err := mcsafe.ParseSpec(exampleSpec)
	if err != nil {
		panic(err)
	}
	prog, err := mcsafe.Assemble(exampleAsm, spec, "")
	if err != nil {
		panic(err)
	}

	tr := mcsafe.NewTrace()
	c := mcsafe.New(mcsafe.WithParallelism(1), mcsafe.WithObserver(tr))
	res, err := c.Check(context.Background(), prog, spec)
	if err != nil {
		panic(err)
	}

	fmt.Println("safe:", res.Safe)
	fmt.Println("global conditions:", tr.Counter("vcgen_conditions"))
	fmt.Println("loop invariants synthesized:", tr.Counter("induction_runs") > 0)
	// Output:
	// safe: true
	// global conditions: 4
	// loop invariants synthesized: true
}

// ExampleChecker_CheckAll checks a batch of programs concurrently with
// one configured Checker; outcomes stay indexed like the items.
func ExampleChecker_CheckAll() {
	spec, err := mcsafe.ParseSpec(exampleSpec)
	if err != nil {
		panic(err)
	}
	prog, err := mcsafe.Assemble(exampleAsm, spec, "")
	if err != nil {
		panic(err)
	}

	c := mcsafe.New(mcsafe.WithParallelism(1))
	items := []mcsafe.BatchItem{
		{Prog: prog, Spec: spec},
		{Prog: nil, Spec: spec}, // a bad item errors positionally
		{Prog: prog, Spec: spec},
	}
	for i, out := range c.CheckAll(context.Background(), items, 2) {
		if out.Err != nil {
			fmt.Printf("item %d: error\n", i)
			continue
		}
		fmt.Printf("item %d: safe=%v\n", i, out.Result.Safe)
	}
	// Output:
	// item 0: safe=true
	// item 1: error
	// item 2: safe=true
}
