package mcsafe

// Tests for the observability layer as seen end to end through real
// checks: the span stream must be balanced and properly nested at every
// parallelism, the counters must be deterministic at Parallelism 1 and
// exactly equal the result's Stats at any parallelism, a shared Trace
// must survive concurrent checks under the race detector, and the JSON
// event stream for a small program must keep its golden shape
// (regenerate with MCSAFE_REGEN=1).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"mcsafe/internal/core"
	"mcsafe/internal/obs"
	"mcsafe/internal/progs"
)

// checkEventBalance asserts the structural invariants of a trace's
// event stream: sequence numbers are unique, every span has exactly one
// begin and one end with begin before end, every referenced parent
// exists, and nesting is proper (a child begins after and ends before
// its parent).
func checkEventBalance(t *testing.T, events []obs.Event) {
	t.Helper()
	type spanSeqs struct {
		b, e   int64
		parent obs.SpanID
		hasB   bool
		hasE   bool
	}
	seen := map[int64]bool{}
	spans := map[obs.SpanID]*spanSeqs{}
	for _, ev := range events {
		if seen[ev.Seq] {
			t.Fatalf("duplicate sequence number %d", ev.Seq)
		}
		seen[ev.Seq] = true
		s := spans[ev.Span]
		if s == nil {
			s = &spanSeqs{}
			spans[ev.Span] = s
		}
		switch ev.Ev {
		case "b":
			if s.hasB {
				t.Fatalf("span %d begun twice", ev.Span)
			}
			s.hasB, s.b, s.parent = true, ev.Seq, ev.Parent
		case "e":
			if s.hasE {
				t.Fatalf("span %d ended twice", ev.Span)
			}
			s.hasE, s.e = true, ev.Seq
		default:
			t.Fatalf("unknown event kind %q", ev.Ev)
		}
	}
	for id, s := range spans {
		if !s.hasB || !s.hasE {
			t.Fatalf("span %d unbalanced: begin=%v end=%v", id, s.hasB, s.hasE)
		}
		if s.b >= s.e {
			t.Fatalf("span %d ends (seq %d) before it begins (seq %d)", id, s.e, s.b)
		}
		if s.parent == 0 {
			continue
		}
		p := spans[s.parent]
		if p == nil {
			t.Fatalf("span %d references missing parent %d", id, s.parent)
		}
		if !(p.b < s.b && s.e < p.e) {
			t.Fatalf("span %d (seq %d..%d) not nested inside parent %d (seq %d..%d)",
				id, s.b, s.e, s.parent, p.b, p.e)
		}
	}
}

// observedCheck runs one benchmark with a fresh trace at the given
// parallelism through the internal driver (what the public Checker
// wraps).
func observedCheck(t *testing.T, b *progs.Benchmark, par int) (*core.Result, *obs.Trace) {
	t.Helper()
	prog, spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	res, err := core.CheckContext(context.Background(), prog, spec,
		core.Options{Parallelism: par, Obs: tr})
	if err != nil {
		t.Fatalf("parallelism %d: %v", par, err)
	}
	return res, tr
}

// counterStatsInvariants cross-checks the merged counters against the
// result's Stats: the core emits the counters once from the merged
// stats, so they must be exactly equal at every parallelism.
func counterStatsInvariants(t *testing.T, res *core.Result, tr *obs.Trace) {
	t.Helper()
	for _, c := range []struct {
		name string
		want int
	}{
		{"solver_valid_queries", res.Stats.ProverQueries},
		{"vcgen_conditions", res.Stats.GlobalConds},
		{"annotate_global_conds", res.Stats.GlobalConds},
		{"induction_runs", res.Stats.InductionRuns},
		{"propagate_steps", res.Stats.PropagationSteps},
	} {
		if got := tr.Counter(c.name); got != int64(c.want) {
			t.Errorf("counter %s = %d, want %d (Stats)", c.name, got, c.want)
		}
	}
}

// TestTraceBalanceAndCounters checks every Figure 9 program at
// Parallelism 1 and GOMAXPROCS: the event stream must be balanced and
// properly nested, the span census must match the program (one check
// span, four phase spans, one condition span per global condition), and
// the merged counters must equal the result's Stats.
func TestTraceBalanceAndCounters(t *testing.T) {
	for _, b := range progs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if slowPrograms[b.Name] {
				if testing.Short() {
					t.Skip("slow program: skipped with -short")
				}
				if raceEnabled {
					t.Skip("slow program: skipped under the race detector")
				}
			}
			for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
				res, tr := observedCheck(t, b, par)
				checkEventBalance(t, tr.Events())
				counterStatsInvariants(t, res, tr)
				byKind := map[string]int{}
				for _, s := range tr.Spans() {
					byKind[s.Kind]++
				}
				if byKind["check"] != 1 {
					t.Errorf("parallelism %d: %d check spans, want 1", par, byKind["check"])
				}
				if byKind["phase"] != 4 {
					t.Errorf("parallelism %d: %d phase spans, want 4", par, byKind["phase"])
				}
				if byKind["cond"] != res.Stats.GlobalConds {
					t.Errorf("parallelism %d: %d cond spans, want %d",
						par, byKind["cond"], res.Stats.GlobalConds)
				}
				if res.Stats.InductionRuns != byKind["induction"] {
					t.Errorf("parallelism %d: %d induction spans, want %d",
						par, byKind["induction"], res.Stats.InductionRuns)
				}
			}
		})
	}
}

// TestTraceCounterDeterminism runs each program twice at Parallelism 1:
// the merged counters and the timing-stripped event streams must be
// byte-identical — the sequential path is fully deterministic.
func TestTraceCounterDeterminism(t *testing.T) {
	for _, b := range progs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if slowPrograms[b.Name] {
				if testing.Short() {
					t.Skip("slow program: skipped with -short")
				}
				if raceEnabled {
					t.Skip("slow program: skipped under the race detector")
				}
			}
			_, tr1 := observedCheck(t, b, 1)
			_, tr2 := observedCheck(t, b, 1)
			if c1, c2 := tr1.Counters(), tr2.Counters(); !reflect.DeepEqual(c1, c2) {
				t.Errorf("counters diverged across runs:\n run 1: %v\n run 2: %v", c1, c2)
			}
			e1, e2 := normalizeEvents(tr1.Events()), normalizeEvents(tr2.Events())
			if !reflect.DeepEqual(e1, e2) {
				t.Errorf("event streams diverged across runs (%d vs %d events)", len(e1), len(e2))
			}
		})
	}
}

// normalizeEvents strips the wall-clock offsets, leaving the
// deterministic structure: sequence, nesting, kinds, names, attributes.
func normalizeEvents(events []obs.Event) []obs.Event {
	out := append([]obs.Event(nil), events...)
	for i := range out {
		out[i].T = 0
	}
	return out
}

// TestTraceSharedConcurrentChecks drives one shared Trace from many
// concurrent checks at parallelism > 1 — the regime the race detector
// tier exercises. The merged stream must still be balanced, and the
// counters must be the sums over all checks.
func TestTraceSharedConcurrentChecks(t *testing.T) {
	sum, hash := progs.Get("Sum"), progs.Get("Hash")
	// Solo runs establish the per-check condition counts the merged
	// counters must sum to.
	resSum, _ := observedCheck(t, sum, 1)
	resHash, _ := observedCheck(t, hash, 1)
	tr := obs.New()
	const perProgram = 4
	var wg sync.WaitGroup
	for _, b := range []*progs.Benchmark{sum, hash} {
		for i := 0; i < perProgram; i++ {
			b := b
			wg.Add(1)
			go func() {
				defer wg.Done()
				prog, spec, err := b.Build()
				if err != nil {
					t.Error(err)
					return
				}
				res, err := core.CheckContext(context.Background(), prog, spec,
					core.Options{Parallelism: 2, Obs: tr})
				if err != nil {
					t.Error(err)
					return
				}
				if !res.Safe {
					t.Errorf("%s reported unsafe", b.Name)
				}
			}()
		}
	}
	wg.Wait()
	checkEventBalance(t, tr.Events())
	checkSpans := 0
	for _, s := range tr.Spans() {
		if s.Kind == "check" {
			checkSpans++
		}
	}
	if want := 2 * perProgram; checkSpans != want {
		t.Errorf("%d check spans, want %d", checkSpans, want)
	}
	want := int64(perProgram * (resSum.Stats.GlobalConds + resHash.Stats.GlobalConds))
	if got := tr.Counter("vcgen_conditions"); got != want {
		t.Errorf("vcgen_conditions = %d, want %d", got, want)
	}
}

// TestTraceGoldenJSON locks the JSON event-stream shape for the Figure 1
// program at Parallelism 1 against a golden file. Wall-clock offsets are
// zeroed; everything else — sequence numbers, span nesting, kinds,
// names, attributes (including formula texts), counters — is
// deterministic and must not drift silently. The schema is stable:
// fields are only ever added. Regenerate with MCSAFE_REGEN=1.
func TestTraceGoldenJSON(t *testing.T) {
	spec, err := ParseSpec(fig1Spec)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(fig1Asm, spec, "")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	c := New(WithParallelism(1), WithObserver(tr))
	res, err := c.Check(context.Background(), prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe {
		t.Fatalf("Figure 1 should be safe: %+v", res.Violations)
	}
	snap := tr.Snapshot()
	snap.Events = normalizeEvents(snap.Events)
	got, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "sum_trace.json")
	if os.Getenv("MCSAFE_REGEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with MCSAFE_REGEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace JSON diverged from %s (regenerate with MCSAFE_REGEN=1 if intended)\ngot %d bytes, want %d",
			golden, len(got), len(want))
	}
}

// TestCheckContextCancelled: a cancelled context must surface as a
// *PhaseError naming the interrupted phase and unwrapping to
// context.Canceled — and an observed check must still leave a balanced
// event stream behind.
func TestCheckContextCancelled(t *testing.T) {
	spec, err := ParseSpec(fig1Spec)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(fig1Asm, spec, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	tr := NewTrace()
	c := New(WithObserver(tr))
	res, err := c.Check(ctx, prog, spec)
	if err == nil {
		t.Fatalf("cancelled check returned a result: %+v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not unwrap to context.Canceled: %v", err)
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *PhaseError: %T %v", err, err)
	}
	if pe.Phase == "" {
		t.Error("PhaseError does not name the interrupted phase")
	}
	checkEventBalance(t, tr.Events())

	// The batch API propagates the cancellation to every item.
	for _, out := range c.CheckAll(ctx, []BatchItem{{Prog: prog, Spec: spec}, {Prog: prog, Spec: spec}}, 2) {
		if out.Err == nil {
			t.Error("cancelled batch item returned no error")
		} else if !errors.Is(out.Err, context.Canceled) {
			t.Errorf("batch error does not unwrap to context.Canceled: %v", out.Err)
		}
	}
}

// TestExplainVerdictPath checks Result.Explain on a real violation: the
// paging-policy null-deref must render its stable code, the failed
// condition's predicate, the proof attempts, and — because the check was
// observed — the condition's span timing.
func TestExplainVerdictPath(t *testing.T) {
	b := progs.Get("PagingPolicy")
	spec, err := ParseSpec(b.Spec)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(b.Source, spec, b.Entry)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	c := New(WithParallelism(1), WithObserver(tr))
	res, err := c.Check(context.Background(), prog, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("PagingPolicy must be rejected")
	}
	var v *Violation
	for i := range res.Violations {
		if res.Violations[i].Code == CodeNullPtr {
			v = &res.Violations[i]
		}
	}
	if v == nil {
		t.Fatalf("no %q violation: %+v", CodeNullPtr, res.Violations)
	}
	text := res.Explain(*v)
	for _, want := range []string{"[nullptr]", "condition #", "predicate:", "attempt 1", "proof time:"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("Explain output missing %q:\n%s", want, text)
		}
	}
}
