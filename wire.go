package mcsafe

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion is the current version of the Result wire schema: the
// versioned JSON encoding shared bit-identically by `mcsafe -json`, the
// verdict store's on-disk records, and the mcsafed server's responses.
// The schema evolves additively — fields are only ever added, and
// decoders tolerate unknown fields — so the version is bumped only on a
// breaking change (none so far).
const SchemaVersion = 1

// WireResult is the versioned wire form of a Result (schema v1). Field
// names and JSON tags are frozen; the encoding produced by Marshal is
// canonical (compact, fields in declaration order), so equal WireResults
// encode to equal bytes — the property the content-addressed verdict
// store relies on to serve warm submissions bit-identically to the cold
// check that populated them.
//
// Violation.Span is trace-local (span IDs are assigned per observer) and
// is normalized to zero on the wire.
type WireResult struct {
	// Schema is the wire-schema version (SchemaVersion at encode time).
	Schema int `json:"schema"`
	// Checker is the CheckerVersion that produced the verdict.
	Checker string `json:"checker"`
	// Arch is the architecture name of the checked program ("sparc",
	// "rv32i"). Added additively in mcsafe-9; decoders of older records
	// see the empty string.
	Arch string `json:"arch,omitempty"`
	// Safe, Violations, Stats, and Times mirror Result. Violations is
	// never null on the wire: an empty list encodes as [].
	Safe       bool        `json:"safe"`
	Violations []Violation `json:"violations"`
	Stats      Stats       `json:"stats"`
	Times      PhaseTimes  `json:"times"`
}

// NewWireResult builds the canonical wire form from result components:
// the violation list is copied with trace-local span IDs cleared, and a
// nil list becomes the empty list.
func NewWireResult(arch string, safe bool, violations []Violation, stats Stats, times PhaseTimes) WireResult {
	vs := make([]Violation, len(violations))
	copy(vs, violations)
	for i := range vs {
		vs[i].Span = 0
	}
	return WireResult{
		Schema: SchemaVersion, Checker: CheckerVersion, Arch: arch,
		Safe: safe, Violations: vs, Stats: stats, Times: times,
	}
}

// Wire returns the result's canonical wire form.
func (r *Result) Wire() WireResult {
	return NewWireResult(r.arch, r.Safe, r.Violations, r.Stats, r.Times)
}

// MarshalWire encodes the result in the canonical v1 wire encoding.
func (r *Result) MarshalWire() ([]byte, error) {
	return r.Wire().Marshal()
}

// Marshal renders the canonical encoding: compact JSON with the fields
// in declaration order. Equal WireResults marshal to equal bytes.
func (w WireResult) Marshal() ([]byte, error) {
	return json.Marshal(w)
}

// UnmarshalWire decodes a wire-encoded Result. Unknown fields are
// ignored — a v1 decoder reads records written by any later additive
// schema — but a missing or unversioned document is rejected, as is a
// major schema it cannot understand.
func UnmarshalWire(data []byte) (*WireResult, error) {
	var w WireResult
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("mcsafe: invalid wire result: %v", err)
	}
	if w.Schema < 1 {
		return nil, fmt.Errorf("mcsafe: not a wire result (schema %d)", w.Schema)
	}
	if w.Violations == nil {
		w.Violations = []Violation{}
	}
	return &w, nil
}

// Result lifts the wire form back into a Result. The lifted result has
// no attached trace or intermediate analysis state: Explain degrades to
// the violation's one-line rendering, and Trace returns nil.
func (w *WireResult) Result() *Result {
	return &Result{
		Safe:       w.Safe,
		Violations: append([]Violation(nil), w.Violations...),
		Stats:      w.Stats,
		Times:      w.Times,
		arch:       w.Arch,
	}
}
