// Command mcsafed serves the machine-code safety checker over HTTP:
// checking-as-a-service with a persistent, content-addressed verdict
// store, so repeat submissions — the common case under heavy traffic —
// are answered in microseconds and survive restarts.
//
// Serve:
//
//	mcsafed -addr :8745 -store /var/lib/mcsafed
//
// The store directory holds the disk layer of the verdict store; omit
// -store to serve without persistence. SIGINT/SIGTERM drain gracefully:
// in-flight checks finish, then the store is closed.
//
// Client mode (used by the CI smoke and handy interactively):
//
//	mcsafed -check http://localhost:8745 -prog Sum        # built-in program
//	mcsafed -check http://localhost:8745 -spec p.spec prog.s
//	mcsafed -check http://localhost:8745 -arch rv32i -spec p.spec prog.s
//	mcsafed -metrics http://localhost:8745                # dump /v1/metrics
//
// -check prints the server's CheckResponse and exits 0 when the program
// is safe, 1 when unsafe, 2 on errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcsafe"
	"mcsafe/internal/obs"
	"mcsafe/internal/progs"
	"mcsafe/internal/server"
	"mcsafe/internal/vstore"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8745", "listen address")
	storeDir := flag.String("store", "", "verdict-store directory (empty: no persistent store)")
	memBytes := flag.Int64("store-mem", 64<<20, "in-memory verdict layer budget, bytes")
	diskBytes := flag.Int64("store-disk", 1<<30, "disk verdict layer budget, bytes")
	parallel := flag.Int("parallel", 1, "Phase 5 workers per check (0 = GOMAXPROCS; 1 maximizes throughput under concurrent load)")
	maxInFlight := flag.Int("max-in-flight", 0, "concurrent checks admitted (0 = GOMAXPROCS)")
	defDeadline := flag.Duration("deadline", 0, "default wall-clock budget per check (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "hard cap on any request's deadline (0 = uncapped)")
	defBudget := flag.Int64("budget", 0, "default solver step budget per check (0 = unlimited)")
	maxSteps := flag.Int64("max-budget", 0, "hard cap on any request's solver step budget (0 = uncapped)")
	defCondTimeout := flag.Duration("cond-timeout", 0, "default per-condition proof timeout (0 = none)")
	maxCondTimeout := flag.Duration("max-cond-timeout", 0, "hard cap on any request's per-condition timeout (0 = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight checks")
	traceSpans := flag.Int("trace-spans", 4096, "trace spans retained for metrics (0 = unlimited; counters and span aggregates always cover every request)")

	checkURL := flag.String("check", "", "client mode: POST one check to this mcsafed base URL")
	metricsURL := flag.String("metrics", "", "client mode: dump /v1/metrics from this base URL")
	builtin := flag.String("prog", "", "client mode: submit a built-in Figure 9 program by name")
	specPath := flag.String("spec", "", "client mode: policy file for a submitted assembly file")
	archName := flag.String("arch", "", "client mode: architecture of a submitted assembly file (default: the server's; see mcsafe.Arches)")
	entry := flag.String("entry", "", "client mode: entry label")
	noCache := flag.Bool("no-cache", false, "client mode: ask the server to bypass its verdict store")
	flag.Parse()

	if *metricsURL != "" {
		return clientMetrics(*metricsURL)
	}
	if *checkURL != "" {
		return clientCheck(*checkURL, *builtin, *specPath, *archName, *entry, flag.Args(), *noCache)
	}

	var store *vstore.Store
	if *storeDir != "" {
		var err error
		store, err = vstore.Open(*storeDir, vstore.Options{MemBytes: *memBytes, DiskBytes: *diskBytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcsafed:", err)
			return 2
		}
		fmt.Printf("mcsafed: verdict store at %s (%d records)\n", *storeDir, store.Len())
	}
	// The daemon lives for millions of requests: bound span retention so
	// the trace's memory stays flat (aggregates still count everything).
	trace := obs.New()
	trace.SetSpanLimit(*traceSpans)
	srv := server.New(server.Config{
		Store:       store,
		Parallelism: *parallel,
		MaxInFlight: *maxInFlight,
		DefaultBudget: mcsafe.Budget{
			Deadline: *defDeadline, SolverSteps: *defBudget, CondTimeout: *defCondTimeout,
		},
		MaxBudget: mcsafe.Budget{
			Deadline: *maxDeadline, SolverSteps: *maxSteps, CondTimeout: *maxCondTimeout,
		},
		Trace: trace,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("mcsafed: serving %s (checker %s, schema v%d)\n", *addr, mcsafe.CheckerVersion, mcsafe.SchemaVersion)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		srv.Close()
		return 2
	case <-ctx.Done():
	}
	// Graceful drain: refuse new submissions, let in-flight checks
	// finish (bounded), then close the store.
	fmt.Println("mcsafed: draining")
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed: shutdown:", err)
		srv.Close()
		return 2
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	fmt.Println("mcsafed: stopped")
	return 0
}

// clientCheck submits one program and prints the response.
func clientCheck(base, builtin, specPath, arch, entry string, args []string, noCache bool) int {
	var req server.CheckRequest
	switch {
	case builtin != "":
		b := progs.Get(builtin)
		if b == nil {
			fmt.Fprintf(os.Stderr, "mcsafed: unknown built-in program %q\n", builtin)
			return 2
		}
		req = server.CheckRequest{Asm: b.Source, Spec: b.Spec, Entry: b.Entry}
	case specPath != "" && len(args) == 1:
		specText, err := os.ReadFile(specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcsafed:", err)
			return 2
		}
		asmText, err := os.ReadFile(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcsafed:", err)
			return 2
		}
		req = server.CheckRequest{Arch: arch, Asm: string(asmText), Spec: string(specText), Entry: entry}
	default:
		fmt.Fprintln(os.Stderr, "usage: mcsafed -check URL -prog Name | -check URL -spec policy.spec prog.s")
		return 2
	}
	req.NoCache = noCache

	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	httpResp, err := http.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	defer httpResp.Body.Close()
	respBody, err := io.ReadAll(httpResp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	var resp server.CheckResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "mcsafed: bad response (%s): %v\n", httpResp.Status, err)
		return 2
	}
	// Pretty-print the full response for humans and greppers alike.
	out, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	fmt.Println(string(out))
	if resp.Error != "" {
		return 2
	}
	wire, err := mcsafe.UnmarshalWire(resp.Result)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	if !wire.Safe {
		return 1
	}
	return 0
}

// clientMetrics dumps the server's metrics snapshot.
func clientMetrics(base string) int {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	return 0
}
