// Command mcsafed serves the machine-code safety checker over HTTP:
// checking-as-a-service with a persistent, content-addressed verdict
// store, so repeat submissions — the common case under heavy traffic —
// are answered in microseconds and survive restarts.
//
// Serve:
//
//	mcsafed -addr :8745 -store /var/lib/mcsafed
//
// The store directory holds the disk layer of the verdict store; omit
// -store to serve without persistence. SIGINT/SIGTERM drain gracefully:
// in-flight checks finish, then the store is closed.
//
// Client mode (used by the CI smoke and handy interactively):
//
//	mcsafed -check http://localhost:8745 -prog Sum        # built-in program
//	mcsafed -check http://localhost:8745 -spec p.spec prog.s
//	mcsafed -check http://localhost:8745 -arch rv32i -spec p.spec prog.s
//	mcsafed -metrics http://localhost:8745                # dump /v1/metrics
//
// -check prints the server's CheckResponse and exits 0 when the program
// is safe, 1 when unsafe, 2 on errors. It retries connection errors and
// server refusals with capped exponential backoff (-retries, honoring
// Retry-After), and -hedge sends a duplicate request when the first is
// slow — both safe because submissions are content-addressed and
// therefore idempotent.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcsafe"
	"mcsafe/internal/obs"
	"mcsafe/internal/server"
	"mcsafe/internal/vstore"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8745", "listen address")
	storeDir := flag.String("store", "", "verdict-store directory (empty: no persistent store)")
	memBytes := flag.Int64("store-mem", 64<<20, "in-memory verdict layer budget, bytes")
	diskBytes := flag.Int64("store-disk", 1<<30, "disk verdict layer budget, bytes")
	storeShards := flag.Int("store-shards", 0, "verdict-store lock stripes (0 = default)")
	storeNoSync := flag.Bool("store-nosync", false, "skip fsync on verdict commits (faster, loses crash durability)")
	admissionWait := flag.Duration("admission-wait", 0, "shed a queued request after this wait with 503 + Retry-After (0 = queue unbounded)")
	storeFailThreshold := flag.Int("store-fail-threshold", 0, "consecutive store I/O failures before degraded cache-bypass mode (0 = default 3)")
	storeRecovery := flag.Duration("store-recovery", 0, "degraded-mode duration before a recovery probe (0 = default 15s)")
	parallel := flag.Int("parallel", 1, "Phase 5 workers per check (0 = GOMAXPROCS; 1 maximizes throughput under concurrent load)")
	maxInFlight := flag.Int("max-in-flight", 0, "concurrent checks admitted (0 = GOMAXPROCS)")
	defDeadline := flag.Duration("deadline", 0, "default wall-clock budget per check (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "hard cap on any request's deadline (0 = uncapped)")
	defBudget := flag.Int64("budget", 0, "default solver step budget per check (0 = unlimited)")
	maxSteps := flag.Int64("max-budget", 0, "hard cap on any request's solver step budget (0 = uncapped)")
	defCondTimeout := flag.Duration("cond-timeout", 0, "default per-condition proof timeout (0 = none)")
	maxCondTimeout := flag.Duration("max-cond-timeout", 0, "hard cap on any request's per-condition timeout (0 = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight checks")
	traceSpans := flag.Int("trace-spans", 4096, "trace spans retained for metrics (0 = unlimited; counters and span aggregates always cover every request)")

	checkURL := flag.String("check", "", "client mode: POST one check to this mcsafed base URL")
	metricsURL := flag.String("metrics", "", "client mode: dump /v1/metrics from this base URL")
	builtin := flag.String("prog", "", "client mode: submit a built-in Figure 9 program by name")
	specPath := flag.String("spec", "", "client mode: policy file for a submitted assembly file")
	archName := flag.String("arch", "", "client mode: architecture of a submitted assembly file (default: the server's; see mcsafe.Arches)")
	entry := flag.String("entry", "", "client mode: entry label")
	noCache := flag.Bool("no-cache", false, "client mode: ask the server to bypass its verdict store")
	retries := flag.Int("retries", 4, "client mode: extra attempts on connection errors and 5xx, with capped exponential backoff honoring Retry-After")
	hedge := flag.Duration("hedge", 0, "client mode: send a duplicate request if no answer within this delay; first response wins (0 = off)")
	flag.Parse()

	if *metricsURL != "" {
		return clientMetrics(*metricsURL)
	}
	if *checkURL != "" {
		return clientCheck(*checkURL, *builtin, *specPath, *archName, *entry, flag.Args(), *noCache, *retries, *hedge)
	}

	var store *vstore.Store
	if *storeDir != "" {
		var err error
		store, err = vstore.Open(*storeDir, vstore.Options{
			MemBytes: *memBytes, DiskBytes: *diskBytes,
			Shards: *storeShards, NoSync: *storeNoSync,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcsafed:", err)
			return 2
		}
		fmt.Printf("mcsafed: verdict store at %s (%d records)\n", *storeDir, store.Len())
	}
	// The daemon lives for millions of requests: bound span retention so
	// the trace's memory stays flat (aggregates still count everything).
	trace := obs.New()
	trace.SetSpanLimit(*traceSpans)
	srv := server.New(server.Config{
		Store:              store,
		Parallelism:        *parallel,
		MaxInFlight:        *maxInFlight,
		AdmissionWait:      *admissionWait,
		StoreFailThreshold: *storeFailThreshold,
		StoreRecovery:      *storeRecovery,
		DefaultBudget: mcsafe.Budget{
			Deadline: *defDeadline, SolverSteps: *defBudget, CondTimeout: *defCondTimeout,
		},
		MaxBudget: mcsafe.Budget{
			Deadline: *maxDeadline, SolverSteps: *maxSteps, CondTimeout: *maxCondTimeout,
		},
		Trace: trace,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("mcsafed: serving %s (checker %s, schema v%d)\n", *addr, mcsafe.CheckerVersion, mcsafe.SchemaVersion)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		srv.Close()
		return 2
	case <-ctx.Done():
	}
	// Graceful drain: refuse new submissions, let in-flight checks
	// finish (bounded), then close the store.
	fmt.Println("mcsafed: draining")
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed: shutdown:", err)
		srv.Close()
		return 2
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	fmt.Println("mcsafed: stopped")
	return 0
}
