package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"time"

	"mcsafe"
	"mcsafe/internal/progs"
	"mcsafe/internal/server"
)

// retryClient is mcsafed's client-mode HTTP layer: capped exponential
// backoff with jitter, Retry-After honored on refusals, and an optional
// hedged duplicate request. All of it is safe because /v1/check is
// idempotent by construction — requests are content-addressed, so a
// retried or duplicated submission yields the same verdict (usually
// straight from the server's store).
type retryClient struct {
	hc      *http.Client
	retries int           // additional attempts after the first
	hedge   time.Duration // 0 disables the hedged duplicate
}

const (
	retryBase = 200 * time.Millisecond
	retryCap  = 3 * time.Second
)

func newRetryClient(retries int, hedge time.Duration) *retryClient {
	if retries < 0 {
		retries = 0
	}
	return &retryClient{hc: &http.Client{}, retries: retries, hedge: hedge}
}

type httpResult struct {
	status int
	header http.Header
	body   []byte
	err    error
}

func (r httpResult) describe() string {
	if r.err != nil {
		return r.err.Error()
	}
	return fmt.Sprintf("HTTP %d", r.status)
}

// retryable reports whether the result is worth another attempt:
// connection failures and server-side refusals (shedding, draining,
// internal errors) are; client errors and verdicts are not.
func (r httpResult) retryable() bool {
	return r.err != nil || r.status >= 500 || r.status == http.StatusTooManyRequests
}

// postJSON POSTs body to url until a usable response arrives or the
// attempts run out. The final result is returned either way — a last
// 5xx still carries a response body the caller can print.
func (c *retryClient) postJSON(url string, body []byte) (int, []byte, error) {
	var last httpResult
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt, last)
			fmt.Fprintf(os.Stderr, "mcsafed: %s; retry %d/%d in %v\n",
				last.describe(), attempt, c.retries, delay.Round(time.Millisecond))
			time.Sleep(delay)
		}
		last = c.attempt(url, body)
		if !last.retryable() {
			return last.status, last.body, nil
		}
	}
	if last.err != nil {
		return 0, nil, fmt.Errorf("after %d attempts: %w", c.retries+1, last.err)
	}
	return last.status, last.body, nil
}

// attempt runs one try, optionally hedged: if the primary request has
// not answered within the hedge delay, an identical duplicate is sent
// and the first usable response wins. Hedging bounds tail latency (a
// request stuck behind a slow check or a dying connection); it never
// changes the answer, because the request is content-addressed.
func (c *retryClient) attempt(url string, body []byte) httpResult {
	if c.hedge <= 0 {
		return c.post(url, body)
	}
	results := make(chan httpResult, 2)
	launch := func() { go func() { results <- c.post(url, body) }() }
	launch()
	timer := time.NewTimer(c.hedge)
	defer timer.Stop()
	launched, received := 1, 0
	var first *httpResult
	for received < launched {
		select {
		case r := <-results:
			received++
			if !r.retryable() {
				return r
			}
			if first == nil {
				first = &r
			}
		case <-timer.C:
			if launched == 1 {
				launched++
				launch()
			}
		}
	}
	return *first
}

// backoff computes the next delay: the server's Retry-After if it sent
// one, else exponential from retryBase capped at retryCap — jittered
// either way so a fleet of clients doesn't retry in lockstep.
func (c *retryClient) backoff(attempt int, last httpResult) time.Duration {
	if last.header != nil {
		if secs, err := strconv.Atoi(last.header.Get("Retry-After")); err == nil && secs >= 0 {
			return time.Duration(secs)*time.Second + time.Duration(rand.Int63n(int64(250*time.Millisecond)))
		}
	}
	d := retryBase << (attempt - 1)
	if d > retryCap {
		d = retryCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

func (c *retryClient) post(url string, body []byte) httpResult {
	resp, err := c.hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return httpResult{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return httpResult{err: err}
	}
	return httpResult{status: resp.StatusCode, header: resp.Header, body: b}
}

// clientCheck submits one program (retrying per the flags) and prints
// the response. Exit codes: 0 safe, 1 unsafe, 2 error.
func clientCheck(base, builtin, specPath, arch, entry string, args []string, noCache bool, retries int, hedge time.Duration) int {
	var req server.CheckRequest
	switch {
	case builtin != "":
		b := progs.Get(builtin)
		if b == nil {
			fmt.Fprintf(os.Stderr, "mcsafed: unknown built-in program %q\n", builtin)
			return 2
		}
		req = server.CheckRequest{Asm: b.Source, Spec: b.Spec, Entry: b.Entry}
	case specPath != "" && len(args) == 1:
		specText, err := os.ReadFile(specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcsafed:", err)
			return 2
		}
		asmText, err := os.ReadFile(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcsafed:", err)
			return 2
		}
		req = server.CheckRequest{Arch: arch, Asm: string(asmText), Spec: string(specText), Entry: entry}
	default:
		fmt.Fprintln(os.Stderr, "usage: mcsafed -check URL -prog Name | -check URL -spec policy.spec prog.s")
		return 2
	}
	req.NoCache = noCache

	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	status, respBody, err := newRetryClient(retries, hedge).postJSON(base+"/v1/check", body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	var resp server.CheckResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "mcsafed: bad response (HTTP %d): %v\n", status, err)
		return 2
	}
	// Pretty-print the full response for humans and greppers alike.
	out, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	fmt.Println(string(out))
	if resp.Error != "" {
		return 2
	}
	wire, err := mcsafe.UnmarshalWire(resp.Result)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	if !wire.Safe {
		return 1
	}
	return 0
}

// clientMetrics dumps the server's metrics snapshot.
func clientMetrics(base string) int {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "mcsafed:", err)
		return 2
	}
	return 0
}
