package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryClientRecoversFrom503 drives the client against a server
// that sheds (503 + Retry-After) twice before answering: the client
// must retry through the refusals and return the eventual 200.
func TestRetryClientRecoversFrom503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	status, body, err := newRetryClient(4, 0).postJSON(ts.URL, []byte(`{}`))
	if err != nil || status != http.StatusOK {
		t.Fatalf("postJSON = (%d, %v), want 200", status, err)
	}
	if string(body) != `{"ok":true}` {
		t.Fatalf("body = %q", body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two shed + one served)", got)
	}
}

// TestRetryClientGivesUp pins the retry bound: a persistently failing
// server exhausts the attempts and the final status comes back.
func TestRetryClientGivesUp(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	status, _, err := newRetryClient(2, 0).postJSON(ts.URL, []byte(`{}`))
	if err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("postJSON = (%d, %v), want final 503 with no error", status, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want exactly 1 + 2 retries", got)
	}
}

// TestRetryClientNoRetryOn400 pins that client errors are terminal:
// a 400 is the answer, not a reason to retry.
func TestRetryClientNoRetryOn400(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()
	if status, _, err := newRetryClient(4, 0).postJSON(ts.URL, []byte(`{}`)); err != nil || status != http.StatusBadRequest {
		t.Fatalf("postJSON = (%d, %v), want immediate 400", status, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

// TestHedgedRequestWins pins hedging: when the first request stalls, a
// duplicate goes out after the hedge delay and its (fast) answer is
// returned without waiting for the stalled one.
func TestHedgedRequestWins(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // the primary hangs until the test ends
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer func() {
		close(release)
		ts.Close()
	}()
	c := newRetryClient(0, 20*time.Millisecond)
	start := time.Now()
	status, body, err := c.postJSON(ts.URL, []byte(`{}`))
	if err != nil || status != http.StatusOK || string(body) != `{"ok":true}` {
		t.Fatalf("hedged postJSON = (%d, %q, %v)", status, body, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged request took %v — the duplicate did not win", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want primary + hedge", got)
	}
}

// TestHedgeNotSentWhenFast pins the hedge stays holstered when the
// primary answers within the delay.
func TestHedgeNotSentWhenFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	if status, _, err := newRetryClient(0, time.Second).postJSON(ts.URL, []byte(`{}`)); err != nil || status != 200 {
		t.Fatalf("postJSON = (%d, %v)", status, err)
	}
	time.Sleep(20 * time.Millisecond) // a stray hedge would land here
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no hedge)", got)
	}
}

// TestRetryClientConnectionError pins retries on transport failures: a
// dead endpoint errors after exhausting every attempt.
func TestRetryClientConnectionError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens anymore
	if _, _, err := newRetryClient(1, 0).postJSON(ts.URL, []byte(`{}`)); err == nil {
		t.Fatal("postJSON against a closed server returned no error")
	}
}
