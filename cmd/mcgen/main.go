// Command mcgen works the generated conformance corpus: it emits
// synthetic SPARC fixtures with constructed ground truth, verifies seed
// ranges against the checker (and optionally the committed manifest),
// and prints deterministic shard assignments for CI.
//
//	mcgen emit -seed 42 -size 1000 -kind oob -o /tmp/fixtures
//	mcgen verify -seeds 0:200 -manifest internal/conform/testdata/manifest.json
//	mcgen verify -seeds 0:200 -shard 1/4 -truth-only -v
//	mcgen shard -seeds 0:200 -shard 3/4
//
// The exit status is 1 when verification finds any ground-truth
// disagreement or manifest diff, making verify directly usable as a CI
// gate. Everything is deterministic: a seed range fully determines the
// fixture list, its order, and each shard's contents.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mcsafe"
	"mcsafe/internal/conform"
	"mcsafe/internal/gen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "emit":
		err = emitCmd(os.Args[2:])
	case "verify":
		err = verifyCmd(os.Args[2:])
	case "shard":
		err = shardCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "mcgen: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcgen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  mcgen emit   -seed N [-size S] [-kind safe|oob|align|uninit|nullptr|stack] [-o dir]
  mcgen verify [-seeds LO:HI] [-shard I/N] [-manifest path | -truth-only] [-parallel N]
               [-deadline D] [-cond-timeout D] [-v]
  mcgen shard  [-seeds LO:HI] -shard I/N
`)
}

// parseSeeds parses "LO:HI" (half-open).
func parseSeeds(s string) (lo, hi int64, err error) {
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil || hi <= lo {
		return 0, 0, fmt.Errorf("bad -seeds %q (want LO:HI with HI > LO)", s)
	}
	return lo, hi, nil
}

// parseShard parses "I/N".
func parseShard(s string) (index, total int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &index, &total); err != nil || total < 1 || index < 0 || index >= total {
		return 0, 0, fmt.Errorf("bad -shard %q (want I/N with 0 <= I < N)", s)
	}
	return index, total, nil
}

func emitCmd(args []string) error {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "generator seed")
	size := fs.Int("size", 0, "target instruction count (0 = the seed's corpus-plan size)")
	kind := fs.String("kind", "", "safe or a planted violation code (empty = the seed's corpus-plan kind)")
	out := fs.String("o", ".", "output directory")
	fs.Parse(args)

	cfg := conform.PlanSeed(*seed)
	if *size != 0 {
		cfg.Size = *size
	}
	if *kind != "" {
		cfg.Kind = gen.Kind(*kind)
		ok := false
		for _, k := range gen.Kinds {
			ok = ok || k == cfg.Kind
		}
		if !ok {
			return fmt.Errorf("unknown -kind %q", *kind)
		}
	}
	f := gen.Generate(cfg)
	if _, _, err := f.Build(); err != nil {
		return err
	}
	meta, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	for suffix, data := range map[string]string{
		".s":    f.Asm,
		".spec": f.Spec,
		".json": string(meta) + "\n",
	} {
		path := filepath.Join(*out, f.Name+suffix)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("%s: %d instructions, %d units, ground truth %s", f.Name, f.Insns, f.Units, f.Kind)
	if !f.WantSafe {
		fmt.Printf(" (planted in %s)", f.PlantUnit)
	}
	fmt.Printf("\n  %s\n", filepath.Join(*out, f.Name+".{s,spec,json}"))
	return nil
}

func verifyCmd(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	seeds := fs.String("seeds", "0:200", "seed range LO:HI (half-open)")
	shard := fs.String("shard", "", "run only shard I/N of the range")
	manifest := fs.String("manifest", "", "diff outcomes against this manifest (in addition to ground truth)")
	truthOnly := fs.Bool("truth-only", false, "ground-truth check only (no manifest)")
	parallel := fs.Int("parallel", 0, "fixture-level workers (0 = GOMAXPROCS)")
	deadline := fs.Duration("deadline", 0, "per-fixture wall-clock budget (0 = none)")
	condTO := fs.Duration("cond-timeout", 0, "per-condition proof timeout (0 = none)")
	verbose := fs.Bool("v", false, "per-fixture timing and verdicts")
	fs.Parse(args)

	lo, hi, err := parseSeeds(*seeds)
	if err != nil {
		return err
	}
	index, total, err := parseShard(*shard)
	if err != nil {
		return err
	}
	if *manifest == "" && !*truthOnly {
		*manifest = "internal/conform/testdata/manifest.json"
	}

	fixtures := conform.Corpus(lo, hi)
	part, err := conform.Shard(fixtures, index, total)
	if err != nil {
		return err
	}
	start := time.Now()
	outcomes := conform.Run(context.Background(), part, conform.Options{
		Parallelism: *parallel,
		Budget:      mcsafe.Budget{Deadline: *deadline, CondTimeout: *condTO},
	})

	insns, failures := 0, 0
	for _, o := range outcomes {
		insns += o.Fixture.Insns
		if *verbose {
			status := o.Norm.Verdict
			if len(o.Norm.Codes) > 0 {
				status += "[" + strings.Join(o.Norm.Codes, ",") + "]"
			}
			if o.Err != nil {
				status = "error: " + o.Err.Error()
			}
			fmt.Printf("  %-28s %6d insns  %8.3fs  %s\n",
				o.Fixture.Name, o.Fixture.Insns, o.Elapsed.Seconds(), status)
		}
		if err := o.GroundTruth(); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "ground truth: %v\n", err)
		}
	}

	diffs := 0
	if *manifest != "" {
		m, err := conform.LoadManifest(*manifest)
		if err != nil {
			return err
		}
		ds := conform.Compare(m, outcomes)
		diffs = len(ds)
		if diffs > 0 {
			fmt.Fprint(os.Stderr, conform.Report(ds))
		}
	}

	fmt.Printf("verify: %d fixtures (%d instructions) in %v, %d ground-truth failures, %d manifest diffs\n",
		len(part), insns, time.Since(start).Round(time.Millisecond), failures, diffs)
	if failures > 0 || diffs > 0 {
		return fmt.Errorf("%d failures, %d diffs", failures, diffs)
	}
	return nil
}

func shardCmd(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	seeds := fs.String("seeds", "0:200", "seed range LO:HI (half-open)")
	shard := fs.String("shard", "", "shard I/N to list")
	fs.Parse(args)

	lo, hi, err := parseSeeds(*seeds)
	if err != nil {
		return err
	}
	index, total, err := parseShard(*shard)
	if err != nil {
		return err
	}
	part, err := conform.Shard(conform.Corpus(lo, hi), index, total)
	if err != nil {
		return err
	}
	for _, f := range part {
		fmt.Printf("%s %d\n", f.Name, f.Insns)
	}
	return nil
}
