// Command mcfuzz runs the differential correctness campaigns of
// internal/difftest outside the go-fuzz engine: deterministic,
// seed-replayable sweeps sized for a CI budget or an overnight soak.
//
//	mcfuzz -mode all -n 20000 -seed 7
//	mcfuzz -mode soundness -progs all -mutants 80 -worlds 4
//
// Modes:
//
//	encode     random canonical instructions and arbitrary words through
//	           the encoder/decoder round-trip laws
//	solver     random box-bounded systems, implications, and quantified
//	           formulas differentially against exhaustive enumeration
//	soundness  mutate the evaluation programs, check every mutant, and
//	           concretely execute the checker-approved ones
//	gen        sweep whole generated programs (internal/gen) against
//	           their constructed ground truth, and concretely execute
//	           every checker-approved one
//	all        every campaign (soundness and gen sized down to stay
//	           interactive)
//
// The exit status is 1 when any campaign finds a counterexample, making
// the command directly usable as a CI gate.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"mcsafe/internal/difftest"
	"mcsafe/internal/progs"
	"mcsafe/internal/solver"
)

func main() {
	var (
		mode    = flag.String("mode", "all", "campaign: encode, solver, soundness, gen, or all")
		n       = flag.Int("n", 10000, "iterations for the encode and solver campaigns")
		seed    = flag.Int64("seed", 1, "PRNG seed (campaigns are deterministic given a seed)")
		progSet = flag.String("progs", "", "soundness programs: comma-separated names, \"all\", or empty for the fast set")
		mutants = flag.Int("mutants", 40, "mutants per program in the soundness campaign")
		worlds  = flag.Int("worlds", 3, "concrete environments per checker-approved mutant")
		inputTO = flag.Duration("input-timeout", 10*time.Minute, "per-mutant check watchdog in the soundness campaign (0 = none)")
		genN    = flag.Int("gen-n", 120, "generated programs in the gen campaign")
		genSize = flag.Int("gen-size", 400, "size-band upper bound (instructions) in the gen campaign")
	)
	flag.Parse()
	mutantsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "mutants" {
			mutantsSet = true
		}
	})

	failed := false
	run := func(name string, f func() error) {
		start := time.Now()
		err := f()
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "FAIL %-10s %v\n", name, err)
			return
		}
		fmt.Printf("ok   %-10s %v\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *mode == "encode" || *mode == "all" {
		run("encode", func() error { return encodeCampaign(*seed, *n) })
	}
	if *mode == "solver" || *mode == "all" {
		run("solver", func() error { return solverCampaign(*seed, *n) })
	}
	if *mode == "soundness" || *mode == "all" {
		m := *mutants
		if *mode == "all" && !mutantsSet {
			m = 15 // keep -mode all interactive
		}
		run("soundness", func() error { return soundnessCampaign(*seed, *progSet, m, *worlds, *inputTO) })
	}
	if *mode == "gen" || *mode == "all" {
		n := *genN
		if *mode == "all" {
			n = min(n, 40) // keep -mode all interactive
		}
		run("gen", func() error { return genCampaign(*seed, n, *genSize, *worlds) })
	}
	if failed {
		os.Exit(1)
	}
}

func genCampaign(seed int64, n, maxSize, worlds int) error {
	stats, err := difftest.RunGenOracle(difftest.GenOracleConfig{
		Seed: seed, Programs: n, MaxSize: maxSize, Worlds: worlds, MaxSteps: 200000,
	})
	fmt.Printf("     gen: %d programs (%d instructions), %d safe, %d planted, %d executions\n",
		stats.Programs, stats.Instructions, stats.Safe, stats.Unsafe, stats.Executions)
	return err
}

func encodeCampaign(seed int64, n int) error {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if err := difftest.CheckInsnRoundTrip(difftest.GenInsn(r)); err != nil {
			return fmt.Errorf("iteration %d (seed %d): %v", i, seed, err)
		}
		if err := difftest.CheckWordRoundTrip(r.Uint32()); err != nil {
			return fmt.Errorf("iteration %d (seed %d): %v", i, seed, err)
		}
	}
	for _, b := range progs.Sorted() {
		prog, _, err := b.BuildNative()
		if err != nil {
			return err
		}
		if err := difftest.CheckProgramRoundTrip(prog); err != nil {
			return fmt.Errorf("%s: %v", b.Name, err)
		}
	}
	return nil
}

func solverCampaign(seed int64, n int) error {
	r := rand.New(rand.NewSource(seed))
	p := solver.New()
	for i := 0; i < n; i++ {
		if err := difftest.CheckSystem(p, difftest.GenSystem(r)); err != nil {
			return fmt.Errorf("system %d (seed %d): %v", i, seed, err)
		}
	}
	// Implications and quantified formulas are pricier; run a tenth each.
	for i := 0; i < n/10; i++ {
		hyp, goal, vars, dom := difftest.GenImplication(r)
		if _, err := difftest.CheckImplication(p, hyp, goal, vars, dom); err != nil {
			return fmt.Errorf("implication %d (seed %d): %v", i, seed, err)
		}
	}
	for i := 0; i < n/20; i++ {
		f, vars, dom := difftest.GenQuantified(r)
		if _, _, err := difftest.CheckQuantified(p, f, vars, dom); err != nil {
			return fmt.Errorf("quantified %d (seed %d): %v", i, seed, err)
		}
	}
	return nil
}

func soundnessCampaign(seed int64, progSet string, mutants, worlds int, inputTimeout time.Duration) error {
	cfg := difftest.OracleConfig{
		Seed: seed, Mutants: mutants, Worlds: worlds, MaxSteps: 200000,
		InputTimeout: inputTimeout,
	}
	switch progSet {
	case "":
		// fast set (the OracleConfig default)
	case "all":
		cfg.Programs = progs.Names()
	default:
		cfg.Programs = strings.Split(progSet, ",")
	}
	findings, stats, err := difftest.RunSoundness(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("     soundness: %d programs, %d mutants, %d rejected, %d approved, %d executions, %d checker panics, %d hangs\n",
		stats.Programs, stats.Mutants, stats.Rejected, stats.Approved, stats.Executions, stats.CheckerPanics, stats.Hangs)
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "     %s\n", f)
		}
		return fmt.Errorf("%d soundness violations", len(findings))
	}
	if stats.CheckerPanics > 0 {
		return fmt.Errorf("checker panicked on %d mutants", stats.CheckerPanics)
	}
	if stats.Hangs > 0 {
		return fmt.Errorf("checker hung past the watchdog on %d mutants", stats.Hangs)
	}
	return nil
}
