// Command mcsafe checks untrusted SPARC machine code against a
// host-specified safety policy, reproducing the prototype safety checker
// of "Safety Checking of Machine Code" (Xu, Miller, Reps; PLDI 2000).
//
// Usage:
//
//	mcsafe -spec policy.spec [-entry label] [-dump-typestate] [-dump-conds] prog.s
//	mcsafe -list                       # list the built-in Figure 9 programs
//	mcsafe -prog Sum [-dump-typestate] # check a built-in program
package main

import (
	"flag"
	"fmt"
	"os"

	"mcsafe"
	"mcsafe/internal/core"
	"mcsafe/internal/progs"
)

func main() {
	specPath := flag.String("spec", "", "path to the policy/specification file")
	entry := flag.String("entry", "", "entry label (default: first instruction)")
	builtin := flag.String("prog", "", "check a built-in Figure 9 program by name")
	list := flag.Bool("list", false, "list the built-in Figure 9 programs")
	dumpTS := flag.Bool("dump-typestate", false, "print per-instruction typestates (Figure 6 style)")
	dumpConds := flag.Bool("dump-conds", false, "print every global safety condition and its verdict")
	dumpAsm := flag.Bool("dump-asm", false, "print the decoded program")
	flag.Parse()

	if *list {
		for _, b := range progs.All() {
			safe := "safe"
			if !b.WantSafe {
				safe = "UNSAFE"
			}
			fmt.Printf("%-15s %-7s %s\n", b.Name, safe, b.Descr)
		}
		return
	}

	var res *mcsafe.Result
	var err error
	switch {
	case *builtin != "":
		b := progs.Get(*builtin)
		if b == nil {
			fatal(fmt.Errorf("unknown built-in program %q (use -list)", *builtin))
		}
		inner, cerr := b.Check(core.Options{})
		if cerr != nil {
			fatal(cerr)
		}
		printCore(inner, *dumpConds)
		if inner.Safe {
			fmt.Println("VERDICT: safe")
			return
		}
		fmt.Println("VERDICT: UNSAFE")
		os.Exit(1)

	default:
		if *specPath == "" || flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: mcsafe -spec policy.spec [-entry label] prog.s")
			os.Exit(2)
		}
		specText, rerr := os.ReadFile(*specPath)
		if rerr != nil {
			fatal(rerr)
		}
		asmText, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fatal(rerr)
		}
		spec, perr := mcsafe.ParseSpec(string(specText))
		if perr != nil {
			fatal(perr)
		}
		prog, aerr := mcsafe.Assemble(string(asmText), spec, *entry)
		if aerr != nil {
			fatal(aerr)
		}
		if *dumpAsm {
			fmt.Print(prog.Disassemble())
		}
		res, err = mcsafe.Check(prog, spec)
		if err != nil {
			fatal(err)
		}
		if *dumpTS {
			fmt.Print(res.DumpTypestate())
		}
		if *dumpConds {
			fmt.Print(res.Conditions())
		}
		printResult(res)
		if !res.Safe {
			os.Exit(1)
		}
	}
}

func printResult(res *mcsafe.Result) {
	st := res.Stats
	fmt.Printf("instructions=%d branches=%d loops=%d(%d inner) calls=%d global-conditions=%d\n",
		st.Instructions, st.Branches, st.Loops, st.InnerLoops, st.Calls, st.GlobalConds)
	fmt.Printf("times: typestate=%v annot+local=%v global=%v total=%v\n",
		res.Times.Typestate, res.Times.AnnotLocal, res.Times.Global, res.Times.Total)
	for _, v := range res.Violations {
		fmt.Println(" ", v)
	}
	if res.Safe {
		fmt.Println("VERDICT: safe")
	} else {
		fmt.Println("VERDICT: UNSAFE")
	}
}

func printCore(res *core.Result, dumpConds bool) {
	st := res.Stats
	fmt.Printf("instructions=%d branches=%d loops=%d(%d inner) calls=%d global-conditions=%d\n",
		st.Instructions, st.Branches, st.Loops, st.InnerLoops, st.Calls, st.GlobalConds)
	fmt.Printf("times: typestate=%v annot+local=%v global=%v total=%v\n",
		res.Times.Typestate, res.Times.AnnotLocal, res.Times.Global, res.Times.Total)
	if dumpConds {
		for _, cr := range res.Conds {
			verdict := "proved"
			if !cr.Proved {
				verdict = "VIOLATION"
			}
			fmt.Printf("  insn %4d: %-24s %s\n",
				res.G.Nodes[cr.Cond.Node].Index, cr.Cond.Desc, verdict)
		}
	}
	for _, v := range res.Violations {
		fmt.Println(" ", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsafe:", err)
	os.Exit(2)
}
