// Command mcsafe checks untrusted machine code against a
// host-specified safety policy, reproducing the prototype safety checker
// of "Safety Checking of Machine Code" (Xu, Miller, Reps; PLDI 2000).
// -arch selects the instruction-set front-end ("sparc", the paper's
// subject architecture and the default, or "rv32i").
//
// Usage:
//
//	mcsafe [-arch rv32i] -spec policy.spec [-entry label] [-dump-typestate] [-dump-conds] prog.s
//	mcsafe -spec policy.spec prog1.s prog2.s ...  # batch-check concurrently
//	mcsafe -list                       # list the built-in Figure 9 programs
//	mcsafe -prog Sum [-dump-typestate] # check a built-in program
//
// -parallel N sets the worker count for global verification (0 =
// GOMAXPROCS, 1 = sequential); with several program files it also bounds
// the number of programs checked concurrently.
//
// Observability:
//
//	-json     emit the result as JSON (machine-readable violation codes)
//	-trace    record phase/condition/solver spans and counters; with
//	          -json the trace event stream is embedded in the output,
//	          otherwise a Prometheus-style text snapshot follows the report
//	-explain  print the verdict path of every violation: the proof
//	          strategies tried, their formulas, and the WLP each reduced to
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mcsafe"
	"mcsafe/internal/obs"
	"mcsafe/internal/progs"
)

// jsonReport is the -json output envelope. The verdict itself is the
// versioned Result wire encoding (mcsafe.WireResult, "result") — the
// same bytes a verdict-store record and an mcsafed response carry — with
// the submission's content addresses alongside. The envelope evolves
// additively: fields are only ever added.
type jsonReport struct {
	Program     string          `json:"program,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Policy      string          `json:"policy,omitempty"`
	Checker     string          `json:"checker"`
	Result      json.RawMessage `json:"result"`
	Trace       *obs.Snapshot   `json:"trace,omitempty"`
}

func emitJSON(name string, prog *mcsafe.Program, spec *mcsafe.Spec, res *mcsafe.Result, tr *mcsafe.Trace) {
	wire, err := res.MarshalWire()
	if err != nil {
		fatal(err)
	}
	rep := jsonReport{
		Program:     name,
		Fingerprint: prog.Fingerprint().String(),
		Policy:      spec.Hash().String(),
		Checker:     mcsafe.CheckerVersion,
		Result:      json.RawMessage(wire),
	}
	if tr != nil {
		snap := tr.Snapshot()
		rep.Trace = &snap
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func main() {
	specPath := flag.String("spec", "", "path to the policy/specification file")
	entry := flag.String("entry", "", "entry label (default: first instruction)")
	builtin := flag.String("prog", "", "check a built-in Figure 9 program by name")
	list := flag.Bool("list", false, "list the built-in Figure 9 programs")
	dumpTS := flag.Bool("dump-typestate", false, "print per-instruction typestates (Figure 6 style)")
	dumpConds := flag.Bool("dump-conds", false, "print every global safety condition and its verdict")
	dumpAsm := flag.Bool("dump-asm", false, "print the decoded program")
	parallel := flag.Int("parallel", 0, "global-verification workers: 0 = GOMAXPROCS, 1 = sequential")
	jsonOut := flag.Bool("json", false, "emit the result as JSON")
	trace := flag.Bool("trace", false, "record spans and counters (see -json)")
	explain := flag.Bool("explain", false, "print the verdict path of every violation")
	deadline := flag.Duration("deadline", 0, "wall-clock bound per check (0 = none); exceeding it degrades unproven conditions to 'resource' violations")
	budget := flag.Int64("budget", 0, "solver step budget per check (0 = unlimited); exhaustion degrades to 'resource' violations")
	condTimeout := flag.Duration("cond-timeout", 0, "wall-clock bound per condition proof (0 = none)")
	arch := flag.String("arch", mcsafe.DefaultArch,
		fmt.Sprintf("instruction-set architecture of the checked code (%s)", strings.Join(mcsafe.Arches(), ", ")))
	flag.Parse()

	bud := mcsafe.Budget{Deadline: *deadline, SolverSteps: *budget, CondTimeout: *condTimeout}

	if *list {
		for _, b := range progs.Sorted() {
			safe := "safe"
			if !b.WantSafe {
				safe = "UNSAFE"
			}
			fmt.Printf("%-15s %-7s %s\n", b.Name, safe, b.Descr)
		}
		return
	}

	var tr *mcsafe.Trace
	if *trace {
		tr = mcsafe.NewTrace()
	}

	switch {
	case *builtin != "":
		b := progs.Get(*builtin)
		if b == nil {
			fatal(fmt.Errorf("unknown built-in program %q (use -list)", *builtin))
		}
		spec, perr := mcsafe.ParseSpec(b.Spec)
		if perr != nil {
			fatal(perr)
		}
		prog, aerr := mcsafe.Assemble(b.Source, spec, b.Entry)
		if aerr != nil {
			fatal(aerr)
		}
		if *dumpAsm {
			fmt.Print(prog.Disassemble())
		}
		checker := mcsafe.New(
			mcsafe.WithParallelism(*parallel),
			mcsafe.WithObserver(tr),
			mcsafe.WithBudget(bud),
		)
		res, cerr := checker.Check(context.Background(), prog, spec)
		if cerr != nil {
			fatal(cerr)
		}
		if *jsonOut {
			emitJSON(b.Name, prog, spec, res, tr)
		} else {
			if *dumpTS {
				fmt.Print(res.DumpTypestate())
			}
			if *dumpConds {
				fmt.Print(res.Conditions())
			}
			printResult(res, *explain)
			if tr != nil {
				if err := tr.WriteText(os.Stdout); err != nil {
					fatal(err)
				}
			}
		}
		if !res.Safe {
			os.Exit(1)
		}

	default:
		if *specPath == "" || flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: mcsafe -spec policy.spec [-entry label] prog.s [prog2.s ...]")
			os.Exit(2)
		}
		specText, rerr := os.ReadFile(*specPath)
		if rerr != nil {
			fatal(rerr)
		}
		spec, perr := mcsafe.ParseSpecArch(string(specText), *arch)
		if perr != nil {
			fatal(perr)
		}
		checker := mcsafe.New(
			mcsafe.WithParallelism(*parallel),
			mcsafe.WithObserver(tr),
			mcsafe.WithBudget(bud),
		)
		if flag.NArg() == 1 {
			prog, res, err := checkOne(checker, spec, *arch, flag.Arg(0), *entry, *dumpAsm)
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				emitJSON(flag.Arg(0), prog, spec, res, tr)
			} else {
				if *dumpTS {
					fmt.Print(res.DumpTypestate())
				}
				if *dumpConds {
					fmt.Print(res.Conditions())
				}
				printResult(res, *explain)
				if tr != nil {
					if err := tr.WriteText(os.Stdout); err != nil {
						fatal(err)
					}
				}
			}
			if !res.Safe {
				os.Exit(1)
			}
			return
		}
		// Several programs against one policy: assemble all, then check
		// them concurrently through the batch API.
		items := make([]mcsafe.BatchItem, flag.NArg())
		for i, path := range flag.Args() {
			asmText, rerr := os.ReadFile(path)
			if rerr != nil {
				fatal(rerr)
			}
			prog, aerr := mcsafe.AssembleArch(*arch, string(asmText), spec, *entry)
			if aerr != nil {
				fatal(fmt.Errorf("%s: %v", path, aerr))
			}
			items[i] = mcsafe.BatchItem{Prog: prog, Spec: spec}
		}
		anyBad := false
		for i, br := range checker.CheckAll(context.Background(), items, *parallel) {
			path := flag.Arg(i)
			switch {
			case br.Err != nil:
				fmt.Printf("%s: ERROR: %v\n", path, br.Err)
				anyBad = true
			case br.Result.Safe:
				fmt.Printf("%s: safe (%d conditions, %v)\n",
					path, br.Result.Stats.GlobalConds, br.Result.Times.Total)
			default:
				fmt.Printf("%s: UNSAFE (%d violations, %v)\n",
					path, len(br.Result.Violations), br.Result.Times.Total)
				for _, v := range br.Result.Violations {
					fmt.Println("   ", v)
				}
				if *explain {
					for _, v := range br.Result.Violations {
						fmt.Print(br.Result.Explain(v))
					}
				}
				anyBad = true
			}
		}
		if tr != nil && !*jsonOut {
			if err := tr.WriteText(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if anyBad {
			os.Exit(1)
		}
	}
}

func checkOne(checker *mcsafe.Checker, spec *mcsafe.Spec, arch, path, entry string, dumpAsm bool) (*mcsafe.Program, *mcsafe.Result, error) {
	asmText, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	prog, err := mcsafe.AssembleArch(arch, string(asmText), spec, entry)
	if err != nil {
		return nil, nil, err
	}
	if dumpAsm {
		fmt.Print(prog.Disassemble())
	}
	res, err := checker.Check(context.Background(), prog, spec)
	return prog, res, err
}

func printResult(res *mcsafe.Result, explain bool) {
	st := res.Stats
	fmt.Printf("instructions=%d branches=%d loops=%d(%d inner) calls=%d global-conditions=%d\n",
		st.Instructions, st.Branches, st.Loops, st.InnerLoops, st.Calls, st.GlobalConds)
	fmt.Printf("times: typestate=%v annot+local=%v global=%v total=%v\n",
		res.Times.Typestate, res.Times.AnnotLocal, res.Times.Global, res.Times.Total)
	for _, v := range res.Violations {
		fmt.Println(" ", v)
	}
	if explain {
		for _, v := range res.Violations {
			fmt.Print(res.Explain(v))
		}
	}
	if res.Safe {
		fmt.Println("VERDICT: safe")
	} else {
		fmt.Println("VERDICT: UNSAFE")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsafe:", err)
	os.Exit(2)
}
