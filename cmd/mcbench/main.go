// Command mcbench regenerates Figure 9 of "Safety Checking of Machine
// Code": it runs the safety checker on the thirteen evaluation programs
// and prints the program characteristics and per-phase checking times,
// side by side with the numbers the paper reports for its 440 MHz
// Sun Ultra 10.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"mcsafe/internal/core"
	"mcsafe/internal/induction"
	"mcsafe/internal/obs"
	"mcsafe/internal/progs"
)

// jsonReport is the machine-readable form of a run, written by -json so
// successive PRs can track the performance trajectory (BENCH_*.json).
type jsonReport struct {
	GoMaxProcs  int           `json:"gomaxprocs"`
	Parallelism int           `json:"parallelism"`
	Ablation    string        `json:"ablation,omitempty"`
	Programs    []jsonProgram `json:"programs"`
}

type jsonProgram struct {
	Name         string `json:"name"`
	Safe         bool   `json:"safe"`
	ExpectedSafe bool   `json:"expected_safe"`
	Violations   int    `json:"violations"`
	Instructions int    `json:"instructions"`
	GlobalConds  int    `json:"global_conds"`
	TypestateNs  int64  `json:"typestate_ns"`
	AnnotLocalNs int64  `json:"annot_local_ns"`
	GlobalNs     int64  `json:"global_ns"`
	TotalNs      int64  `json:"total_ns"`
	Error        string `json:"error,omitempty"`
	// Counters are the observer's merged effort counters (solver
	// queries, eliminations, induction iterations, ...), present only
	// with -counters: observation costs a little, so baseline timing
	// runs leave it off.
	Counters map[string]int64 `json:"counters,omitempty"`
}

func main() { os.Exit(run()) }

// run is main's body; it returns the exit code instead of calling
// os.Exit so the profile-flushing defers always execute.
func run() int {
	ablate := flag.String("ablate", "", "run an ablation: nogen (no generalization), nodnf (no DNF disjuncts), maxiter=N")
	only := flag.String("only", "", "comma-separated program names (default: all)")
	parallel := flag.Int("parallel", 0, "global-verification workers: 0 = GOMAXPROCS, 1 = sequential")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON of per-phase times instead of the table")
	baseline := flag.String("baseline", "", "compare a fresh run against a baseline JSON report (see -json); exit 1 on regression")
	threshold := flag.Float64("threshold", 2.0, "slowdown factor versus -baseline that counts as a regression")
	counters := flag.Bool("counters", false, "observe each check and report its effort counters (solver queries, FM eliminations, induction iterations, ...)")
	requireCounters := flag.String("require-counters", "", "comma-separated counter names (e.g. intern_hits,early_unsat_prunes) that must be nonzero summed over the checked programs; forces counter collection and exits 1 otherwise")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the checking runs to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (after all runs) to this file")
	storebench := flag.Bool("storebench", false, "benchmark the verdict store: cold check vs warm in-memory and post-restart disk hits")
	storeDir := flag.String("store", "", "with -storebench: store directory (default: a temp dir, removed afterwards)")
	flag.Parse()

	var gated []string
	if *requireCounters != "" {
		for _, name := range strings.Split(*requireCounters, ",") {
			gated = append(gated, strings.TrimSpace(name))
		}
		*counters = true // the gate needs the observer's counters
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mcbench:", err)
			}
		}()
	}

	opts := core.Options{Parallelism: *parallel}
	switch {
	case *ablate == "nogen":
		opts.Induction = induction.Options{DisableGeneralization: true}
	case *ablate == "nodnf":
		opts.Induction = induction.Options{DisableDNF: true}
	case strings.HasPrefix(*ablate, "maxiter="):
		var n int
		fmt.Sscanf(*ablate, "maxiter=%d", &n)
		opts.Induction = induction.Options{MaxIter: n}
	case *ablate != "":
		fmt.Fprintln(os.Stderr, "unknown ablation:", *ablate)
		return 2
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
	}

	if *storebench {
		return storeBench(*storeDir, wanted, *parallel)
	}

	if *baseline != "" {
		return compareBaseline(*baseline, *threshold, opts, wanted, gated)
	}

	if *jsonOut {
		report := collect(opts, wanted, *parallel, *ablate, *counters)
		if err := validateReport(report); err != nil {
			fmt.Fprintln(os.Stderr, "mcbench: refusing to write inconsistent baseline:", err)
			return 1
		}
		if counterGate(gated, sumCounters(report.Programs)) > 0 {
			return 1
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 1
		}
		return 0
	}

	gateTotals := map[string]int64{}

	fmt.Println("Figure 9: characteristics of the examples and performance results")
	fmt.Println("(paper numbers in parentheses; paper times from a 440 MHz Sun Ultra 10)")
	fmt.Println()
	fmt.Printf("%-15s %-12s %-10s %-10s %-8s %-10s %-12s %-12s %-12s %-12s %s\n",
		"Program", "Insns", "Branches", "Loops", "Calls", "GlobConds",
		"Typestate", "Annot+Local", "Global", "Total", "Verdict")

	for _, b := range progs.All() {
		if len(wanted) > 0 && !wanted[b.Name] {
			continue
		}
		bopts := opts
		if *counters {
			bopts.Obs = obs.New()
		}
		res, err := b.Check(bopts)
		if err != nil {
			fmt.Printf("%-15s ERROR: %v\n", b.Name, err)
			continue
		}
		st := res.Stats
		verdict := "safe"
		if !res.Safe {
			verdict = fmt.Sprintf("UNSAFE (%d violations)", len(res.Violations))
		}
		expect := "expected-safe"
		if !b.WantSafe {
			expect = "expected-unsafe"
		}
		fmt.Printf("%-15s %-12s %-10s %-10s %-8s %-10s %-12s %-12s %-12s %-12s %s [%s]\n",
			b.Name,
			fmt.Sprintf("%d(%d)", st.Instructions, b.Paper.Instructions),
			fmt.Sprintf("%d(%d)", st.Branches, b.Paper.Branches),
			fmt.Sprintf("%d/%d(%d/%d)", st.Loops, st.InnerLoops, b.Paper.Loops, b.Paper.InnerLoops),
			fmt.Sprintf("%d(%d)", st.Calls, b.Paper.Calls),
			fmt.Sprintf("%d(%d)", st.GlobalConds, b.Paper.GlobalConds),
			fmt.Sprintf("%.3fs(%.2f)", res.Times.Typestate.Seconds(), b.Paper.TypestateSec),
			fmt.Sprintf("%.3fs(%.3f)", res.Times.AnnotLocal.Seconds(), b.Paper.AnnotLocalSec),
			fmt.Sprintf("%.3fs(%.2f)", res.Times.Global.Seconds(), b.Paper.GlobalSec),
			fmt.Sprintf("%.3fs(%.2f)", res.Times.Total.Seconds(), b.Paper.TotalSec),
			verdict, expect)
		if *counters {
			c := bopts.Obs.Counters()
			printCounters(c)
			for k, v := range c {
				gateTotals[k] += v
			}
		}
	}
	if counterGate(gated, gateTotals) > 0 {
		return 1
	}
	return 0
}

// sumCounters totals each effort counter across the report rows.
func sumCounters(programs []jsonProgram) map[string]int64 {
	totals := map[string]int64{}
	for _, p := range programs {
		for k, v := range p.Counters {
			totals[k] += v
		}
	}
	return totals
}

// counterGate enforces -require-counters: each named counter must be
// nonzero summed across the checked programs. A zero total means an
// optimization (formula interning, early-unsat pruning, ...) silently
// stopped engaging, which pure timing thresholds — noisy, and generous
// by design — would miss. Returns the number of failed counters.
func counterGate(names []string, totals map[string]int64) int {
	failures := 0
	for _, name := range names {
		if totals[name] == 0 {
			failures++
			fmt.Fprintf(os.Stderr, "mcbench: required counter %q is zero across the checked programs\n", name)
		} else {
			fmt.Printf("counter-gate ok: %-24s %d\n", name, totals[name])
		}
	}
	return failures
}

// validateReport sanity-checks a report before it can be stored as a
// baseline: each program's phase times must sum to no more than its
// total (a violated invariant means the row was hand-edited or garbled,
// and ratio checks against it would be meaningless).
func validateReport(r jsonReport) error {
	for _, p := range r.Programs {
		if p.Error != "" {
			continue
		}
		if sum := p.TypestateNs + p.AnnotLocalNs + p.GlobalNs; sum > p.TotalNs {
			return fmt.Errorf("%s: phase times sum to %dns > total %dns", p.Name, sum, p.TotalNs)
		}
	}
	return nil
}

// printCounters renders one program's effort counters, sorted by name.
func printCounters(c map[string]int64) {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("    %-28s %d\n", k, c[k])
	}
}

// collect runs the selected benchmarks and gathers the JSON report rows.
func collect(opts core.Options, wanted map[string]bool, parallel int, ablate string, counters bool) jsonReport {
	report := jsonReport{
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: parallel,
		Ablation:    ablate,
	}
	for _, b := range progs.All() {
		if len(wanted) > 0 && !wanted[b.Name] {
			continue
		}
		row := jsonProgram{Name: b.Name, ExpectedSafe: b.WantSafe}
		bopts := opts
		if counters {
			bopts.Obs = obs.New()
		}
		res, err := b.Check(bopts)
		if err != nil {
			row.Error = err.Error()
		} else {
			if counters {
				row.Counters = bopts.Obs.Counters()
			}
			row.Safe = res.Safe
			row.Violations = len(res.Violations)
			row.Instructions = res.Stats.Instructions
			row.GlobalConds = res.Stats.GlobalConds
			row.TypestateNs = res.Times.Typestate.Nanoseconds()
			row.AnnotLocalNs = res.Times.AnnotLocal.Nanoseconds()
			row.GlobalNs = res.Times.Global.Nanoseconds()
			row.TotalNs = res.Times.Total.Nanoseconds()
		}
		report.Programs = append(report.Programs, row)
	}
	return report
}

// regressionFloorNs keeps timing noise on sub-50ms programs from
// tripping the ratio check: a program regresses only when it exceeds
// both threshold x baseline and threshold x floor.
const regressionFloorNs = 50_000_000

// compareBaseline reruns the benchmarks and diffs them against a stored
// -json report. Verdict changes and errors always fail; timing fails
// only on gross slowdowns (the threshold is deliberately generous, CI
// machines differ from the one that wrote the baseline). When gated
// counters are given, the rerun also collects effort counters and fails
// if any gated counter sums to zero. Returns the process exit code.
func compareBaseline(path string, threshold float64, opts core.Options, wanted map[string]bool, gated []string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		return 2
	}
	var base jsonReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %s: %v\n", path, err)
		return 2
	}
	baseByName := make(map[string]jsonProgram, len(base.Programs))
	for _, p := range base.Programs {
		baseByName[p.Name] = p
	}

	cur := collect(opts, wanted, 0, "", len(gated) > 0)
	failures := counterGate(gated, sumCounters(cur.Programs))
	for _, p := range cur.Programs {
		b, ok := baseByName[p.Name]
		if !ok {
			fmt.Printf("new  %-15s total=%.3fs (no baseline entry)\n", p.Name, float64(p.TotalNs)/1e9)
			continue
		}
		switch {
		case p.Error != "":
			failures++
			fmt.Printf("FAIL %-15s error: %s\n", p.Name, p.Error)
		case p.Safe != b.Safe:
			failures++
			fmt.Printf("FAIL %-15s verdict changed: safe=%v, baseline safe=%v\n", p.Name, p.Safe, b.Safe)
		case p.Safe != p.ExpectedSafe:
			failures++
			fmt.Printf("FAIL %-15s verdict differs from expectation: safe=%v, want %v\n", p.Name, p.Safe, p.ExpectedSafe)
		case float64(p.TotalNs) > threshold*float64(b.TotalNs) && float64(p.TotalNs) > threshold*regressionFloorNs:
			failures++
			fmt.Printf("FAIL %-15s total %.3fs vs baseline %.3fs (> %.1fx)\n",
				p.Name, float64(p.TotalNs)/1e9, float64(b.TotalNs)/1e9, threshold)
		default:
			fmt.Printf("ok   %-15s total %.3fs vs baseline %.3fs\n",
				p.Name, float64(p.TotalNs)/1e9, float64(b.TotalNs)/1e9)
		}
	}
	if failures > 0 {
		fmt.Printf("%d regressions against %s\n", failures, path)
		return 1
	}
	fmt.Printf("no regressions against %s\n", path)
	return 0
}
