package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcsafe"
	"mcsafe/internal/progs"
	"mcsafe/internal/vstore"
)

// storeBench measures the verdict store's three serving paths per
// program: a cold check (analysis + store write), a warm hit from the
// in-memory layer, and a warm hit from the disk layer after a simulated
// restart (a fresh Open over the same directory, whose memory layer
// starts empty). This is the mcsafed serving story in one table — the
// warm columns are what a resubmission costs.
func storeBench(dir string, wanted map[string]bool, parallelism int) int {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mcsafe-storebench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 2
		}
		defer os.RemoveAll(dir)
	}
	st, err := vstore.Open(dir, vstore.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		return 2
	}
	checker := mcsafe.New(mcsafe.WithParallelism(parallelism))
	ctx := context.Background()

	type row struct {
		name                    string
		bytes                   int
		cold, warmMem, warmDisk time.Duration
	}
	var rows []row
	for _, b := range progs.All() {
		if len(wanted) > 0 && !wanted[b.Name] {
			continue
		}
		spec, err := mcsafe.ParseSpec(b.Spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s: %v\n", b.Name, err)
			return 2
		}
		prog, err := mcsafe.Assemble(b.Source, spec, b.Entry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s: %v\n", b.Name, err)
			return 2
		}
		key := vstore.Key{
			Program: prog.Fingerprint().String(),
			Policy:  spec.Hash().String(),
			Checker: mcsafe.CheckerVersion,
		}

		// Cold: the full serve path on a miss — check, encode, persist.
		start := time.Now()
		res, err := checker.Check(ctx, prog, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s: %v\n", b.Name, err)
			return 2
		}
		wire, err := res.MarshalWire()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s: %v\n", b.Name, err)
			return 2
		}
		if err := st.Put(key, wire); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s: %v\n", b.Name, err)
			return 2
		}
		cold := time.Since(start)

		// Warm memory hits: best of a small burst, the steady state.
		warmMem := time.Duration(1<<62 - 1)
		for i := 0; i < 32; i++ {
			t0 := time.Now()
			if _, ok, err := st.Get(key); !ok || err != nil {
				fmt.Fprintf(os.Stderr, "mcbench: %s: warm get missed (err=%v)\n", b.Name, err)
				return 2
			}
			if d := time.Since(t0); d < warmMem {
				warmMem = d
			}
		}
		rows = append(rows, row{name: b.Name, bytes: len(wire), cold: cold, warmMem: warmMem})
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		return 2
	}

	// Restart: a fresh store over the same directory serves the first
	// Get of each key from disk.
	st2, err := vstore.Open(dir, vstore.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		return 2
	}
	defer st2.Close()
	for i := range rows {
		b := progs.Get(rows[i].name)
		spec, _ := mcsafe.ParseSpec(b.Spec)
		prog, _ := mcsafe.Assemble(b.Source, spec, b.Entry)
		key := vstore.Key{
			Program: prog.Fingerprint().String(),
			Policy:  spec.Hash().String(),
			Checker: mcsafe.CheckerVersion,
		}
		t0 := time.Now()
		if _, ok, err := st2.Get(key); !ok || err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s: disk get missed after restart (err=%v)\n", rows[i].name, err)
			return 2
		}
		rows[i].warmDisk = time.Since(t0)
	}

	fmt.Println("Verdict store: cold check vs warm resubmission (per program)")
	fmt.Println("(warm-mem: in-memory LRU hit; warm-disk: first hit after restart)")
	fmt.Println()
	fmt.Printf("%-15s %8s %12s %12s %12s %10s\n",
		"Program", "Bytes", "Cold", "Warm-mem", "Warm-disk", "Speedup")
	var totCold, totMem time.Duration
	for _, r := range rows {
		speedup := float64(r.cold) / float64(r.warmMem)
		fmt.Printf("%-15s %8d %12v %12v %12v %9.0fx\n",
			r.name, r.bytes, r.cold.Round(time.Microsecond),
			r.warmMem.Round(100*time.Nanosecond), r.warmDisk.Round(time.Microsecond), speedup)
		totCold += r.cold
		totMem += r.warmMem
	}
	if len(rows) > 0 && totMem > 0 {
		fmt.Printf("\ntotal cold %v, total warm-mem %v (%.0fx)\n",
			totCold.Round(time.Microsecond), totMem.Round(time.Microsecond),
			float64(totCold)/float64(totMem))
	}
	return writeScaling()
}

// writeScaling measures concurrent cold-write throughput against the
// shard (lock-stripe) count: many goroutines committing synthetic
// verdicts, full durability (fsync per commit). More stripes mean less
// rename/index contention, which is what lets cold misses under heavy
// traffic scale.
func writeScaling() int {
	fmt.Println("\nConcurrent cold-write scaling (durable commits, 8 writers)")
	fmt.Printf("%-8s %12s %14s\n", "Shards", "Puts", "Puts/sec")
	const (
		workers = 8
		perW    = 64
	)
	verdict := []byte(fmt.Sprintf(`{"schema":1,"safe":true,"pad":%q}`, strings.Repeat("x", 1024)))
	for _, shards := range []int{1, 2, 8} {
		dir, err := os.MkdirTemp("", "mcsafe-writebench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 2
		}
		st, err := vstore.Open(dir, vstore.Options{Shards: shards})
		if err != nil {
			os.RemoveAll(dir)
			fmt.Fprintln(os.Stderr, "mcbench:", err)
			return 2
		}
		start := time.Now()
		var wg sync.WaitGroup
		var failed atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perW; i++ {
					k := vstore.Key{
						Program: fmt.Sprintf("bench-%d-%d", w, i),
						Policy:  "bench", Checker: "bench",
					}
					if err := st.Put(k, verdict); err != nil {
						failed.Add(1)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st.Close()
		os.RemoveAll(dir)
		if failed.Load() > 0 {
			fmt.Fprintf(os.Stderr, "mcbench: %d writers failed at %d shards\n", failed.Load(), shards)
			return 2
		}
		total := workers * perW
		fmt.Printf("%-8d %12d %14.0f\n", shards, total, float64(total)/elapsed.Seconds())
	}
	return 0
}
