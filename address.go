package mcsafe

import (
	"encoding/hex"
	"fmt"

	"mcsafe/internal/isa"
)

// CheckerVersion is an opaque token naming the checker's verdict
// semantics: it is bumped whenever a release can change any verdict,
// violation, statistic, or the wire encoding of a Result. Stored
// verdicts are keyed by it (alongside the program fingerprint and
// policy hash), so a new checker never serves a predecessor's verdicts.
// Compare it only for equality.
const CheckerVersion = "mcsafe-9"

// Hash is a stable 256-bit content address (a SHA-256 digest) used to
// identify programs and policies. Hashes are stable across processes,
// platforms, and checker releases, and collision-resistant against
// adversarially chosen inputs, so they are safe to use as persistent
// cache keys. The zero Hash means "no hash".
type Hash [32]byte

// String renders the hash as 64 lowercase hex digits.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether h is the zero ("no hash") value.
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash parses the 64-hex-digit form String renders.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return Hash{}, fmt.Errorf("mcsafe: invalid hash %q: %v", s, err)
	}
	if len(b) != len(h) {
		return Hash{}, fmt.Errorf("mcsafe: invalid hash %q: want %d hex digits, got %d", s, 2*len(h), len(s))
	}
	copy(h[:], b)
	return h, nil
}

// Fingerprint returns the program's stable content address: a SHA-256
// digest over a canonical encoding of everything the checker sees — the
// architecture, machine words, base address, entry point, loader symbol
// tables, and source map. Two programs with equal fingerprints are
// indistinguishable to the checker, so the fingerprint (together with
// Spec.Hash and CheckerVersion) keys persistent verdict stores. The
// architecture leads the encoding: identical word sequences submitted
// under different ISAs decode to different programs and hash apart.
//
// The encoding is versioned: a future release that changes it also
// changes the digests, which simply invalidates old cache entries.
func (p *Program) Fingerprint() Hash {
	if p == nil {
		return Hash{}
	}
	return Hash(isa.Fingerprint(p.prog))
}

// Hash returns the specification's stable content address: a SHA-256
// digest over a canonical rendering of the parsed policy — types,
// entities and their typestates, constraints, the invocation
// specification, access rules, trusted functions, and frame
// annotations. Formatting and comments in the policy source do not
// perturb it. See Program.Fingerprint for how it keys verdict stores.
func (s *Spec) Hash() Hash {
	if s == nil {
		return Hash{}
	}
	return Hash(s.spec.Hash())
}
