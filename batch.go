package mcsafe

import (
	"context"

	"mcsafe/internal/core"
	"mcsafe/internal/induction"
)

// BatchItem is one program+policy pair submitted to CheckAll.
type BatchItem struct {
	Prog *Program
	Spec *Spec
	Opts Options
}

// BatchResult is the outcome of one item of a CheckAll batch; exactly
// one of Result and Err is non-nil.
type BatchResult struct {
	Result *Result
	Err    error
}

// coreOptions lowers the public Options to the internal driver's.
func coreOptions(opts Options) core.Options {
	return core.Options{
		Induction: induction.Options{
			MaxIter:               opts.MaxInductionIterations,
			DisableGeneralization: opts.DisableGeneralization,
			DisableDNF:            opts.DisableDNF,
		},
		Parallelism: opts.Parallelism,
		Budget:      opts.Budget,
	}
}

// CheckAll checks many program+policy pairs concurrently with a bounded
// worker pool — the entry point for serving many independent check
// requests. parallelism bounds the number of in-flight checks (0 means
// GOMAXPROCS); results are indexed like items. Items whose Options
// leave Parallelism at 0 run their Phase 5 sequentially when the batch
// itself is parallel (the batch already saturates the cores); an
// explicit per-item Parallelism is honored.
//
// Deprecated: build a Checker instead — New().CheckAll(ctx, items,
// parallelism) — which adds context cancellation and configuration
// reuse. This shim is kept for source compatibility and delegates
// unchanged.
func CheckAll(items []BatchItem, parallelism int) []BatchResult {
	return New().CheckAll(context.Background(), items, parallelism)
}
