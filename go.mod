module mcsafe

go 1.22
