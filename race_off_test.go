//go:build !race

package mcsafe

// raceEnabled reports whether the race detector is compiled in; the
// determinism tests use it to skip the slowest programs, which run
// roughly an order of magnitude slower under -race.
const raceEnabled = false
